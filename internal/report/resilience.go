package report

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/sweep"
)

// resilienceRow is one audit cell's JSON-serializable payload, so a
// checkpointed sweep restores it losslessly.
type resilienceRow struct {
	Nominal     int    `json:"nominal"`
	Effective   int    `json:"effective"`
	Exact       bool   `json:"exact"`
	Pruned      int    `json:"pruned"`
	Linked      int    `json:"linked"`
	OracleCheck string `json:"oracle_check"`
	SATTime     string `json:"sat_time"`
	// Unlockable marks a configuration the circuit cannot host (the
	// whole row renders "n/a", mirroring Table1's cell-local treatment
	// of lock errors).
	Unlockable bool `json:"unlockable,omitempty"`
}

// ResilienceTable runs the oracle-less resilience audit (netlint's
// key-const-prop, key-equivalence, removal-vulnerability and
// scan-exposure analyzers, DESIGN.md §10) against RIL-locked circuits
// and prints the effective key length next to the SAT-attack runtime
// on the same lock. The last row deliberately weakens a lock with
// three planted redundant key bits (one forced constant, one parity
// pair) to demonstrate the metric catching them; every discarded bit
// is cross-checked against the batched oracle (flip error must be 0).
func ResilienceTable(cfg AttackConfig) (*Table, error) {
	c17, err := buildC17()
	if err != nil {
		return nil, err
	}
	synth := func(name string) (*netlist.Netlist, error) {
		prof, ok := circuit.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("report: missing profile %s", name)
		}
		return prof.Synthesize(cfg.Scale)
	}
	c432, err := synth("c432")
	if err != nil {
		return nil, err
	}
	// c432 at small scales cannot host an 8x8 block, so the 8x8 row
	// uses the larger c7552 (where the SAT attack typically times out
	// while the audit still terminates with a key-length bound).
	c7552, err := synth("c7552")
	if err != nil {
		return nil, err
	}
	rows := []struct {
		circuit string
		nl      *netlist.Netlist
		blocks  int
		size    core.Size
		planted bool
	}{
		{"c17", c17, 1, core.Size2x2, false},
		{"c432", c432, 2, core.Size2x2, false},
		{"c7552", c7552, 1, core.Size8x8, false},
		{"c432", c432, 2, core.Size2x2, true},
	}
	t := &Table{
		Title: "Oracle-less resilience audit: effective key length vs SAT-attack runtime",
		Header: []string{"circuit", "config", "nominal", "effective", "exactness",
			"pruned", "linked", "oracle check", "SAT attack (s)"},
		Notes: []string{
			fmt.Sprintf("scale=%.2f timeout=%v; 'planted' = lock weakened with 3 redundant key bits", cfg.Scale, cfg.Timeout),
			"oracle check: max flip-error over audit-discarded bits under the batched oracle (must be 0)",
		},
	}
	var jobs []sweep.Job
	for _, r := range rows {
		r := r
		name := fmt.Sprintf("audit/%s/%dx%s", r.circuit, r.blocks, r.size)
		if r.planted {
			name += "/planted"
		}
		jobs = append(jobs, sweep.Job{
			Name: name,
			Seed: cfg.Seed,
			Run: func(ctx context.Context, _ int64) (any, error) {
				return auditLockRow(ctx, r.nl, r.blocks, r.size, r.planted, cfg)
			},
		})
	}
	results, err := runSweep(cfg, "audit", jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		row, err := cellValue[resilienceRow](results[i])
		if err != nil {
			return nil, err
		}
		config := fmt.Sprintf("%dx %s", r.blocks, r.size)
		if r.planted {
			config += " planted"
		}
		if row.Unlockable {
			t.AddRow(r.circuit, config, "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		exactness := "exact"
		if !row.Exact {
			exactness = "conservative"
		}
		t.AddRow(r.circuit, config,
			fmt.Sprintf("%d", row.Nominal),
			fmt.Sprintf("%d", row.Effective),
			exactness,
			fmt.Sprintf("%d", row.Pruned),
			fmt.Sprintf("%d", row.Linked),
			row.OracleCheck,
			row.SATTime)
	}
	return t, nil
}

func auditLockRow(ctx context.Context, orig *netlist.Netlist, blocks int, size core.Size, planted bool, cfg AttackConfig) (resilienceRow, error) {
	var zero resilienceRow
	res, err := core.Lock(orig, core.Options{Blocks: blocks, Size: size, Seed: cfg.Seed})
	if err != nil {
		return resilienceRow{Unlockable: true}, nil
	}
	locked := res.Locked
	keyPos := append([]int(nil), res.KeyInputPos...)
	key := append([]bool(nil), res.Key...)
	names := append([]string(nil), res.KeyNames...)
	if planted {
		locked = locked.Clone()
		pPos, pNames, err := plantRedundantKeys(locked, len(key))
		if err != nil {
			return zero, err
		}
		keyPos = append(keyPos, pPos...)
		names = append(names, pNames...)
		key = append(key, make([]bool, len(pPos))...)
	}

	lres, err := netlint.Run(locked, netlint.Options{AuditSeed: cfg.Seed}, netlint.All()...)
	if err != nil {
		return zero, err
	}
	rep := lres.Resilience
	if rep == nil {
		return zero, fmt.Errorf("report: audit produced no resilience report for %s", locked.Name)
	}

	bitOf := map[string]int{}
	for i, n := range names {
		bitOf[n] = i
	}
	row := resilienceRow{
		Nominal:   rep.Nominal,
		Effective: rep.Effective,
		Exact:     rep.Exact,
		Pruned:    len(rep.Pruned),
		Linked:    len(rep.Linked),
	}
	// Cross-check every discarded bit against the oracle: the audit
	// claims the bit is output-irrelevant, so flipping it must never
	// change an output.
	maxErr, checked := 0.0, 0
	for _, pr := range rep.Pruned {
		if pr.Class != netlint.ClassDiscarded {
			continue
		}
		bit, ok := bitOf[pr.Key]
		if !ok {
			return zero, fmt.Errorf("report: audit pruned unknown key %q", pr.Key)
		}
		e, err := attack.KeyBitFlipError(locked, keyPos, key, bit, 8, cfg.Seed)
		if err != nil {
			return zero, err
		}
		checked++
		if e > maxErr {
			maxErr = e
		}
	}
	switch {
	case checked == 0:
		row.OracleCheck = "-"
	case maxErr == 0:
		row.OracleCheck = fmt.Sprintf("ok (%d bits)", checked)
	default:
		row.OracleCheck = fmt.Sprintf("FAIL (%.3g)", maxErr)
	}

	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return zero, err
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		return zero, err
	}
	sat, err := attack.SATAttack(locked, keyPos, oracle,
		attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
	if err != nil {
		return zero, err
	}
	row.SATTime = fmtDuration(sat.Elapsed, sat.Status != attack.KeyFound)
	return row, nil
}

// buildC17 constructs ISCAS-85 c17 (5 PI, 2 PO, six NAND gates) — the
// canonical miniature benchmark, small enough for every audit proof to
// be exhaustive.
func buildC17() (*netlist.Netlist, error) {
	nl := netlist.New("c17")
	g1 := nl.AddInput("G1")
	g2 := nl.AddInput("G2")
	g3 := nl.AddInput("G3")
	g6 := nl.AddInput("G6")
	g7 := nl.AddInput("G7")
	g10 := nl.AddGate("G10", netlist.Nand, g1, g3)
	g11 := nl.AddGate("G11", netlist.Nand, g3, g6)
	g16 := nl.AddGate("G16", netlist.Nand, g2, g11)
	g19 := nl.AddGate("G19", netlist.Nand, g11, g7)
	nl.MarkOutput(nl.AddGate("G22", netlist.Nand, g10, g16))
	nl.MarkOutput(nl.AddGate("G23", netlist.Nand, g16, g19))
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// plantRedundantKeys appends three deliberately weak key bits to a
// locked netlist — keyinput<n> forced irrelevant by a constant-0 AND,
// and the parity pair keyinput<n+1>/keyinput<n+2> XOR-ed in series
// into one output — mirroring the planted fixtures the audit's unit
// tests use. Returns the new bits' input positions and names.
func plantRedundantKeys(nl *netlist.Netlist, firstKey int) ([]int, []string, error) {
	var sites []int
	seen := map[int]bool{}
	for _, o := range nl.Outputs {
		if !seen[o] {
			seen[o] = true
			sites = append(sites, o)
		}
	}
	if len(sites) < 2 {
		return nil, nil, fmt.Errorf("report: %q has %d outputs, planting needs 2", nl.Name, len(sites))
	}
	var pos []int
	var names []string
	addKey := func(i int) int {
		name := fmt.Sprintf("keyinput%d", i)
		pos = append(pos, len(nl.Inputs))
		names = append(names, name)
		return nl.AddInput(name)
	}
	mix := func(site, signal int, name string) int {
		g := nl.AddGate(name, netlist.Xor, site, signal)
		nl.RedirectFanout(site, g)
		return g
	}
	kA := addKey(firstKey)
	zero := nl.AddGate("plantzero", netlist.Const0)
	dead := nl.AddGate("plantdead", netlist.And, kA, zero)
	mix(sites[0], dead, "plantg0")
	kB := addKey(firstKey + 1)
	kC := addKey(firstKey + 2)
	g := mix(sites[1], kB, "plantg1")
	mix(g, kC, "plantg2")
	if err := nl.Validate(); err != nil {
		return nil, nil, fmt.Errorf("report: planted netlist: %w", err)
	}
	return pos, names, nil
}
