package report

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The audit table must produce one row per configuration, catch the
// planted redundancy in the last row, and never print a failed oracle
// cross-check — a "FAIL" cell would mean the audit pruned a key bit
// the oracle can still observe, which is exactly the unsoundness the
// sampled-proof demotion exists to prevent.
func TestResilienceTable(t *testing.T) {
	cfg := AttackConfig{Timeout: 200 * time.Millisecond, Scale: 0.12, Seed: 1}
	tb, err := ResilienceTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("got %d rows, want 4:\n%s", len(tb.Rows), tb.String())
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(tb.Header), row)
		}
		if strings.Contains(row[7], "FAIL") {
			t.Errorf("oracle cross-check failed — audit pruned an oracle-relevant bit: %v", row)
		}
	}
	planted := tb.Rows[len(tb.Rows)-1]
	if planted[2] == "n/a" {
		t.Fatalf("planted row did not lock: %v", planted)
	}
	nominal, err := strconv.Atoi(planted[2])
	if err != nil {
		t.Fatal(err)
	}
	effective, err := strconv.Atoi(planted[3])
	if err != nil {
		t.Fatal(err)
	}
	if effective >= nominal {
		t.Errorf("planted redundancy not caught: effective %d of %d nominal", effective, nominal)
	}
}
