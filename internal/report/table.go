// Package report runs the paper's experiments end-to-end and formats
// their tables and figure data. Each experiment function corresponds
// to one table or figure of the evaluation (see DESIGN.md for the
// index); cmd/rilbench and the benchmark suite are thin wrappers
// around this package.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// fmtDuration renders attack runtimes the way the paper does: seconds
// with the ∞ marker for timeouts.
func fmtDuration(d time.Duration, timedOut bool) string {
	if timedOut {
		return "inf"
	}
	return fmt.Sprintf("%.3f", d.Seconds())
}

// fmtJoule renders an energy with engineering units.
func fmtJoule(j float64) string {
	switch {
	case j >= 1e-12:
		return fmt.Sprintf("%.2fpJ", j*1e12)
	case j >= 1e-15:
		return fmt.Sprintf("%.2ffJ", j*1e15)
	default:
		return fmt.Sprintf("%.2faJ", j*1e18)
	}
}
