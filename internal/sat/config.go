package sat

// Config tunes the CDCL search heuristics. The zero value is not
// meaningful; start from DefaultConfig. Every knob here changes only
// the *order* in which the search explores the space, never the
// verdict: two solvers with different Configs agree on SAT/UNSAT for
// every formula (the portfolio relies on exactly this).
type Config struct {
	// Seed seeds the solver's private PRNG (random decisions and
	// nothing else). The default matches the historical fixed seed, so
	// New() stays bit-for-bit deterministic across versions.
	Seed int64
	// RandomFreq is the probability of a random decision instead of
	// the VSIDS pick, diversifying the search.
	RandomFreq float64
	// VarDecay is the VSIDS activity decay factor per conflict
	// (activity increment grows by 1/VarDecay).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay per conflict.
	ClauseDecay float64
	// RestartUnit scales the Luby restart sequence (conflicts allowed
	// before the first restart).
	RestartUnit int64
	// InvertPhase flips the initial phase-saving polarity: solvers
	// that default to "true" explore the opposite half-space first.
	InvertPhase bool
	// ShareLBDCap bounds the LBD of learnt clauses a portfolio worker
	// exports to its clause exchange; 0 uses DefaultShareLBDCap.
	// Ignored outside a portfolio.
	ShareLBDCap int32
}

// DefaultShareLBDCap is the learnt-clause quality bar for portfolio
// clause sharing: only clauses whose literals span at most this many
// decision levels (glue-ish clauses) are worth the import cost.
const DefaultShareLBDCap = 6

// DefaultConfig reproduces the historical solver behaviour exactly:
// New() == NewWithConfig(DefaultConfig()).
func DefaultConfig() Config {
	return Config{
		Seed:        91648253,
		RandomFreq:  0.02,
		VarDecay:    0.95,
		ClauseDecay: 0.999,
		RestartUnit: 128,
		ShareLBDCap: DefaultShareLBDCap,
	}
}

// diverseProfiles are the seven worker strategies a portfolio cycles
// through after the default worker 0. They deliberately span a much
// wider range than mild jitter around the defaults: model hunters
// (tiny restart units, high random-decision rates, inverted phase)
// have heavy-tailed but sometimes very short runtimes on satisfiable
// calls, while provers (long restart units, diffuse decay, no noise)
// grind out refutations. The last two never restart in practice
// (RestartUnit 1<<30): since foreign clauses are imported only at
// restart boundaries, their trajectories inside a racing portfolio
// are bit-identical to their solo runs — the portfolio always carries
// two fully reproducible workers. The portfolio's value on a hard
// call is the *minimum* over these strategies, so spread matters more
// than mean.
var diverseProfiles = [7]Config{
	{RandomFreq: 0, VarDecay: 0.95, RestartUnit: 64, InvertPhase: true},      // clean VSIDS, opposite half-space
	{RandomFreq: 0.05, VarDecay: 0.99, RestartUnit: 512},                     // diffuse prover
	{RandomFreq: 0.2, VarDecay: 0.90, RestartUnit: 32, InvertPhase: true},    // noisy hunter
	{RandomFreq: 0.1, VarDecay: 0.85, RestartUnit: 128},                      // focused mid
	{RandomFreq: 0.4, VarDecay: 0.95, RestartUnit: 32, InvertPhase: true},    // wild hunter
	{RandomFreq: 0, VarDecay: 0.99, RestartUnit: 1 << 30},                    // no-restart prover
	{RandomFreq: 0, VarDecay: 0.99, RestartUnit: 1 << 30, InvertPhase: true}, // no-restart prover, opposite half-space
}

// DiverseConfigs returns n solver configurations for a portfolio.
// Index 0 is DefaultConfig — the portfolio's baseline worker searches
// exactly like the sequential solver, so a portfolio is never worse
// than sequential by more than scheduling overhead — and later
// indices cycle through diverseProfiles with a distinct deterministic
// seed each. The assignment is a fixed pure function of the index:
// the same portfolio size always races the same strategies.
func DiverseConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		c := DefaultConfig()
		if i > 0 {
			p := diverseProfiles[(i-1)%len(diverseProfiles)]
			c.RandomFreq = p.RandomFreq
			c.VarDecay = p.VarDecay
			c.RestartUnit = p.RestartUnit
			c.InvertPhase = p.InvertPhase
			// Distinct deterministic seed per worker (SplitMix64 step,
			// matching the sweep pool's seed discipline).
			z := uint64(c.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			c.Seed = int64(z &^ (1 << 63))
		}
		cfgs[i] = c
	}
	return cfgs
}

// sanitize fills unset fields with defaults so a partially specified
// Config cannot wedge the search (e.g. a zero RestartUnit would never
// allow a single conflict between restarts).
func (c Config) sanitize() Config {
	d := DefaultConfig()
	if c.VarDecay <= 0 || c.VarDecay > 1 {
		c.VarDecay = d.VarDecay
	}
	if c.ClauseDecay <= 0 || c.ClauseDecay > 1 {
		c.ClauseDecay = d.ClauseDecay
	}
	if c.RestartUnit <= 0 {
		c.RestartUnit = d.RestartUnit
	}
	if c.RandomFreq < 0 || c.RandomFreq >= 1 {
		c.RandomFreq = d.RandomFreq
	}
	if c.ShareLBDCap <= 0 {
		c.ShareLBDCap = d.ShareLBDCap
	}
	return c
}
