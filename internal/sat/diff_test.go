package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// diffBruteForce reports whether any total assignment satisfies f under
// the given assumptions (nil = none). Only sound for small var counts.
func diffBruteForce(f *cnf.Formula, nVars int, assumptions []cnf.Lit) bool {
	assign := make([]bool, nVars)
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		for v := 0; v < nVars; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		ok := true
		for _, a := range assumptions {
			if assign[a.Var()] == a.Neg() {
				ok = false
				break
			}
		}
		if ok && f.Eval(assign) {
			return true
		}
	}
	return false
}

// diffRandClause draws a clause of 1..3 distinct literals over nVars vars.
func diffRandClause(rng *rand.Rand, nVars int) []cnf.Lit {
	n := 1 + rng.Intn(3)
	seen := make(map[cnf.Var]bool, n)
	var lits []cnf.Lit
	for len(lits) < n {
		v := cnf.Var(rng.Intn(nVars))
		if seen[v] {
			continue
		}
		seen[v] = true
		lits = append(lits, cnf.MkLit(v, rng.Intn(2) == 0))
	}
	return lits
}

// TestDifferentialVsBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on ~1000 random small instances, exercising
// the incremental interface: each instance is solved, re-solved under
// random assumptions, extended with an extra clause, and solved again
// on the same solver object. Every SAT answer is model-checked.
func TestDifferentialVsBruteForce(t *testing.T) {
	const instances = 1000
	rng := rand.New(rand.NewSource(20250806))
	for i := 0; i < instances; i++ {
		nVars := 3 + rng.Intn(10) // 3..12
		nClauses := 1 + rng.Intn(4*nVars)

		f := cnf.NewFormula()
		s := New()
		for v := 0; v < nVars; v++ {
			f.NewVar()
			s.NewVar()
		}
		for c := 0; c < nClauses; c++ {
			lits := diffRandClause(rng, nVars)
			f.AddClause(lits...)
			s.AddClause(lits...)
		}

		want := diffBruteForce(f, nVars, nil)
		got := s.Solve()
		if (got == Sat) != want || got == Unknown {
			t.Fatalf("instance %d: solver says %v, brute force says sat=%v", i, got, want)
		}
		if got == Sat && !f.Eval(s.Model()[:nVars]) {
			t.Fatalf("instance %d: model does not satisfy formula", i)
		}

		// Incremental solve under random assumptions.
		nAssume := 1 + rng.Intn(3)
		seen := make(map[cnf.Var]bool, nAssume)
		var assumptions []cnf.Lit
		for len(assumptions) < nAssume {
			v := cnf.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			assumptions = append(assumptions, cnf.MkLit(v, rng.Intn(2) == 0))
		}
		want = diffBruteForce(f, nVars, assumptions)
		got = s.Solve(assumptions...)
		if (got == Sat) != want || got == Unknown {
			t.Fatalf("instance %d: under assumptions %v solver says %v, brute force says sat=%v",
				i, assumptions, got, want)
		}
		if got == Sat {
			m := s.Model()
			if !f.Eval(m[:nVars]) {
				t.Fatalf("instance %d: assumption model does not satisfy formula", i)
			}
			for _, a := range assumptions {
				if m[a.Var()] == a.Neg() {
					t.Fatalf("instance %d: model violates assumption %v", i, a)
				}
			}
		}

		// Incremental clause addition on the same solver.
		extra := diffRandClause(rng, nVars)
		f.AddClause(extra...)
		s.AddClause(extra...)
		want = diffBruteForce(f, nVars, nil)
		got = s.Solve()
		if (got == Sat) != want || got == Unknown {
			t.Fatalf("instance %d: after extra clause solver says %v, brute force says sat=%v", i, got, want)
		}
		if got == Sat && !f.Eval(s.Model()[:nVars]) {
			t.Fatalf("instance %d: post-extension model does not satisfy formula", i)
		}
	}
}

// TestStatsMonotoneAndResetSafe pins the Stats contract the sweep
// harness relies on: counters only grow across incremental Solve
// calls, ResetStats zeroes them without disturbing solver state, and
// counting resumes from zero afterwards.
func TestStatsMonotoneAndResetSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	const nVars = 12
	for v := 0; v < nVars; v++ {
		s.NewVar()
	}
	monotone := func(prev, cur Stats) bool {
		return cur.Decisions >= prev.Decisions &&
			cur.Propagations >= prev.Propagations &&
			cur.Conflicts >= prev.Conflicts &&
			cur.Restarts >= prev.Restarts &&
			cur.Learnt >= prev.Learnt &&
			cur.Removed >= prev.Removed &&
			cur.MaxDepth >= prev.MaxDepth
	}
	prev := s.Stats()
	for round := 0; round < 20 && s.Okay(); round++ {
		for c := 0; c < 4; c++ {
			s.AddClause(diffRandClause(rng, nVars)...)
		}
		s.Solve()
		cur := s.Stats()
		if !monotone(prev, cur) {
			t.Fatalf("round %d: stats went backwards: %+v -> %+v", round, prev, cur)
		}
		prev = cur
	}
	if prev.Propagations == 0 && prev.Decisions == 0 {
		t.Fatal("stats never advanced; instance too trivial for the regression")
	}

	s.ResetStats()
	if z := s.Stats(); z != (Stats{}) {
		t.Fatalf("ResetStats left residue: %+v", z)
	}
	// The solver must still answer correctly and resume counting.
	st := s.Solve()
	if st == Unknown {
		t.Fatalf("post-reset solve returned %v", st)
	}
	after := s.Stats()
	if after.Propagations == 0 && after.Decisions == 0 && st == Sat {
		// A SAT re-solve must at least re-propagate its trail.
		t.Fatalf("post-reset solve recorded no work: %+v", after)
	}
}
