package sat_test

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// ExampleSolver solves (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c).
func ExampleSolver() {
	s := sat.New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(b, true), cnf.MkLit(c, false))
	st := s.Solve()
	fmt.Println(st)
	fmt.Println("b =", s.Model()[b], "c =", s.Model()[c])
	// Output:
	// SAT
	// b = true c = true
}

// ExampleSolver_assumptions shows incremental solving under
// assumptions: the same clause database answers different questions.
func ExampleSolver_assumptions() {
	s := sat.New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false)) // a ∨ b
	fmt.Println(s.Solve(cnf.MkLit(a, true)))              // assume ¬a
	fmt.Println(s.Solve(cnf.MkLit(a, true), cnf.MkLit(b, true)))
	fmt.Println(s.Solve()) // still usable afterwards
	// Output:
	// SAT
	// UNSAT
	// SAT
}
