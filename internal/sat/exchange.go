package sat

import (
	"sync"

	"repro/internal/cnf"
)

// ClauseExchange is the bounded learnt-clause exchange of a solver
// portfolio. Workers publish high-quality learnt clauses (low LBD) as
// they derive them and collect the other workers' clauses at restart
// boundaries. The buffer is a fixed-capacity ring with a global
// sequence number per slot: publishing never blocks (the oldest
// clause is dropped when the ring is full — clause sharing is an
// optimization, losing a clause costs nothing but duplicated search),
// and collecting copies out only the struct headers, not the literal
// slices, which are write-once and safely shared once published.
//
// The critical sections are a few pointer moves — no allocation, no
// solver calls — so although the implementation uses a plain mutex
// rather than atomics, no worker ever waits on another's search. The
// race detector sees every access synchronized, which is the point:
// "lock-free-ish" here means bounded and non-blocking semantics, not
// unsynchronized memory.
type ClauseExchange struct {
	mu      sync.Mutex
	ring    []SharedClause
	next    uint64 // sequence number of the next publish
	dropped uint64 // clauses evicted before any reader saw them (approximate)
}

// SharedClause is one published learnt clause. Lits is owned by the
// exchange and must not be mutated by readers.
type SharedClause struct {
	From int // publishing worker id
	LBD  int32
	Lits []cnf.Lit
}

// DefaultExchangeCapacity bounds the clauses a portfolio retains for
// late readers; a slow worker that falls further behind re-derives
// what it missed instead of growing the buffer.
const DefaultExchangeCapacity = 4096

// NewClauseExchange returns an exchange retaining at most capacity
// clauses (<= 0 uses DefaultExchangeCapacity).
func NewClauseExchange(capacity int) *ClauseExchange {
	if capacity <= 0 {
		capacity = DefaultExchangeCapacity
	}
	return &ClauseExchange{ring: make([]SharedClause, capacity)}
}

// Publish adds one clause to the exchange, evicting the oldest
// retained clause when full. The literal slice is copied; callers may
// reuse theirs.
func (x *ClauseExchange) Publish(from int, lbd int32, lits []cnf.Lit) {
	if len(lits) == 0 {
		return
	}
	cp := append([]cnf.Lit(nil), lits...)
	x.mu.Lock()
	slot := x.next % uint64(len(x.ring))
	if x.next >= uint64(len(x.ring)) && x.ring[slot].Lits != nil {
		x.dropped++
	}
	x.ring[slot] = SharedClause{From: from, LBD: lbd, Lits: cp}
	x.next++
	x.mu.Unlock()
}

// Cursor returns the position a new reader should start from: only
// clauses published after this call will be collected.
func (x *ClauseExchange) Cursor() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.next
}

// Collect appends to dst every clause published at or after cursor by
// a worker other than reader, and returns the new cursor. Clauses the
// reader fell too far behind to see (evicted) are skipped silently; a
// reader never observes a clause twice.
func (x *ClauseExchange) Collect(reader int, cursor uint64, dst []SharedClause) (uint64, []SharedClause) {
	x.mu.Lock()
	defer x.mu.Unlock()
	start := uint64(0)
	if x.next > uint64(len(x.ring)) {
		start = x.next - uint64(len(x.ring))
	}
	if cursor > start {
		start = cursor
	}
	for seq := start; seq < x.next; seq++ {
		sc := x.ring[seq%uint64(len(x.ring))]
		if sc.From == reader {
			continue
		}
		dst = append(dst, sc)
	}
	return x.next, dst
}

// Dropped reports how many clauses were evicted while still unread by
// at least the slowest possible reader (an upper bound on sharing
// loss, for diagnostics).
func (x *ClauseExchange) Dropped() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.dropped
}
