package sat

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cnf"
)

// TestClauseExchangeBasics covers the single-threaded contract:
// publish/collect ordering, self-filtering, cursor monotonicity and
// drop-oldest eviction.
func TestClauseExchangeBasics(t *testing.T) {
	x := NewClauseExchange(4)
	cur := x.Cursor()
	if cur != 0 {
		t.Fatalf("fresh cursor = %d, want 0", cur)
	}

	lit := func(v int) []cnf.Lit { return []cnf.Lit{cnf.MkLit(cnf.Var(v), false)} }
	x.Publish(0, 1, lit(10))
	x.Publish(1, 1, lit(11))
	x.Publish(0, 1, lit(12))

	// Reader 0 sees only worker 1's clause.
	cur0, got := x.Collect(0, 0, nil)
	if cur0 != 3 || len(got) != 1 || got[0].From != 1 || got[0].Lits[0].Var() != 11 {
		t.Fatalf("reader 0 collected %v (cursor %d)", got, cur0)
	}
	// Re-collecting from the new cursor yields nothing.
	cur0, got = x.Collect(0, cur0, nil)
	if cur0 != 3 || len(got) != 0 {
		t.Fatalf("re-collect returned %v (cursor %d)", got, cur0)
	}

	// Overflow: capacity 4, publish 6 more; a reader at cursor 0 only
	// sees the last 4 and the eviction is counted.
	for v := 20; v < 26; v++ {
		x.Publish(2, 1, lit(v))
	}
	_, got = x.Collect(0, 0, nil)
	if len(got) != 4 {
		t.Fatalf("post-overflow collect returned %d clauses, want 4", len(got))
	}
	for i, sc := range got {
		if want := cnf.Var(22 + i); sc.Lits[0].Var() != want {
			t.Fatalf("clause %d is var %d, want %d (oldest must be evicted first)", i, sc.Lits[0].Var(), want)
		}
	}
	if x.Dropped() == 0 {
		t.Fatal("overflow did not count dropped clauses")
	}

	// Empty clauses are ignored; published literal slices are copies.
	x.Publish(0, 0, nil)
	src := lit(30)
	x.Publish(0, 1, src)
	src[0] = cnf.MkLit(cnf.Var(31), true)
	_, got = x.Collect(1, x.Cursor()-1, nil)
	if len(got) != 1 || got[0].Lits[0].Var() != 30 {
		t.Fatalf("published clause aliases the caller's slice: %v", got)
	}
}

// TestClauseExchangeConcurrent hammers one exchange from several
// goroutines (the portfolio's actual access pattern) so `go test
// -race` can prove the synchronization. Each reader checks it never
// receives its own clauses and that its cursor never goes backwards.
func TestClauseExchangeConcurrent(t *testing.T) {
	x := NewClauseExchange(64)
	const workers, rounds = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var cursor uint64
			var buf []SharedClause
			for i := 0; i < rounds; i++ {
				x.Publish(id, 2, []cnf.Lit{
					cnf.MkLit(cnf.Var(id), false),
					cnf.MkLit(cnf.Var(i%7+workers), true),
				})
				next, out := x.Collect(id, cursor, buf[:0])
				if next < cursor {
					t.Errorf("worker %d: cursor went backwards: %d -> %d", id, cursor, next)
					return
				}
				for _, sc := range out {
					if sc.From == id {
						t.Errorf("worker %d: collected its own clause", id)
						return
					}
					if len(sc.Lits) == 0 {
						t.Errorf("worker %d: collected empty clause", id)
						return
					}
				}
				cursor, buf = next, out
			}
		}(w)
	}
	wg.Wait()
}

// FuzzClauseExchange drives random publish/collect interleavings and
// checks the structural invariants: cursors are monotone and agree
// with Cursor(), a collect never exceeds capacity or total published
// clauses, self-published clauses are filtered, and collected clauses
// are never empty.
func FuzzClauseExchange(f *testing.F) {
	f.Add(uint8(4), uint16(64), int64(1))
	f.Add(uint8(1), uint16(300), int64(7))
	f.Add(uint8(200), uint16(500), int64(-3))
	f.Fuzz(func(t *testing.T, capRaw uint8, opsRaw uint16, seed int64) {
		capacity := int(capRaw%16) + 1
		ops := int(opsRaw % 512)
		x := NewClauseExchange(capacity)
		rng := rand.New(rand.NewSource(seed))

		const readers = 3
		var cursors [readers]uint64
		published := 0
		for op := 0; op < ops; op++ {
			if rng.Intn(3) == 0 {
				n := 1 + rng.Intn(4)
				lits := make([]cnf.Lit, n)
				for j := range lits {
					lits[j] = cnf.MkLit(cnf.Var(rng.Intn(8)), rng.Intn(2) == 0)
				}
				x.Publish(rng.Intn(readers), int32(n), lits)
				published++
				continue
			}
			r := rng.Intn(readers)
			next, out := x.Collect(r, cursors[r], nil)
			if next < cursors[r] {
				t.Fatalf("reader %d: cursor went backwards: %d -> %d", r, cursors[r], next)
			}
			if next != x.Cursor() {
				t.Fatalf("reader %d: Collect cursor %d != Cursor() %d", r, next, x.Cursor())
			}
			if len(out) > capacity {
				t.Fatalf("reader %d: collected %d clauses, capacity %d", r, len(out), capacity)
			}
			if len(out) > published {
				t.Fatalf("reader %d: collected %d clauses, only %d published", r, len(out), published)
			}
			for _, sc := range out {
				if sc.From == r {
					t.Fatalf("reader %d: collected its own clause", r)
				}
				if len(sc.Lits) == 0 {
					t.Fatalf("reader %d: collected empty clause", r)
				}
			}
			cursors[r] = next
		}
		if d := x.Dropped(); d > uint64(published) {
			t.Fatalf("dropped %d > published %d", d, published)
		}
	})
}
