package sat

// varHeap is an indexed binary max-heap over variable activities, used
// by the VSIDS decision heuristic. It stores variable indices and keeps
// a reverse index so that membership tests and key-decrease operations
// are O(1) and O(log n).
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int // var -> position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) percolateUp(i int) {
	x := h.heap[i]
	for i > 0 {
		p := (i - 1) >> 1
		if !h.less(x, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) percolateDown(i int) {
	x := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		r := l + 1
		child := l
		if r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			child = r
		}
		if !h.less(h.heap[child], x) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.percolateUp(h.indices[v])
}

// decrease restores the heap property after v's activity increased
// (the heap is a max-heap, so a larger key moves toward the root).
func (h *varHeap) decrease(v int) {
	if h.inHeap(v) {
		h.percolateUp(h.indices[v])
	}
}

func (h *varHeap) removeMin() int {
	x := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[x] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return x
}
