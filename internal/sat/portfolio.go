package sat

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
)

// Engine is the incremental solving interface shared by the
// sequential Solver and the racing Portfolio, so callers like the
// SAT-attack DIP loop can be written once against either. An Engine
// is not safe for concurrent use; like a Solver, calls must be
// serialized by the caller.
type Engine interface {
	NewVar() cnf.Var
	NumVars() int
	NumClauses() int
	AddClause(lits ...cnf.Lit) bool
	AddFormula(f *cnf.Formula) bool
	Solve(assumptions ...cnf.Lit) Status
	Model() []bool
	ModelValue(l cnf.Lit) bool
	Okay() bool
	Stats() Stats
	Snapshot() Snapshot
	SetDeadline(t time.Time)
	SetContext(ctx context.Context)
}

// Compile-time interface checks.
var (
	_ Engine = (*Solver)(nil)
	_ Engine = (*Portfolio)(nil)
)

// NewEngine returns a solving engine: a plain sequential Solver for
// portfolio sizes below 2, a racing Portfolio otherwise.
func NewEngine(portfolio int) Engine {
	if portfolio < 2 {
		return New()
	}
	return NewPortfolio(portfolio)
}

// Portfolio races n CDCL solvers with diverse heuristics
// (DiverseConfigs) over an identical clause database. Each Solve call
// runs every worker concurrently under a shared cancellation context:
// the first definitive SAT/UNSAT verdict wins and cancels the rest,
// and workers exchange low-LBD learnt clauses through a bounded
// ClauseExchange while they search.
//
// Determinism contract: a Portfolio is *verdict-deterministic* — for
// a fixed clause/Solve sequence the SAT/UNSAT answers never vary,
// because every worker is sound and complete — but
// *trace-nondeterministic*: which worker wins, the model it returns
// on SAT, and the per-worker statistics depend on scheduling. Callers
// that need a reproducible trace (journal replay) must use the
// sequential Solver.
type Portfolio struct {
	workers []*Solver
	exch    *ClauseExchange
	okay    bool
	winner  int // worker index of the last definitive verdict, -1 before
	model   []bool

	ctx      context.Context
	deadline time.Time
}

// NewPortfolio returns a portfolio of n racing workers (n < 2 is
// raised to 2; use New for a sequential solver). Worker 0 runs the
// default sequential configuration, the rest diversified ones.
func NewPortfolio(n int) *Portfolio {
	if n < 2 {
		n = 2
	}
	p := &Portfolio{
		exch:   NewClauseExchange(0),
		okay:   true,
		winner: -1,
	}
	for i, cfg := range DiverseConfigs(n) {
		w := NewWithConfig(cfg)
		w.SetExchange(p.exch, i)
		p.workers = append(p.workers, w)
	}
	return p
}

// Workers returns the portfolio size.
func (p *Portfolio) Workers() int { return len(p.workers) }

// WorkerStats returns each worker's own cumulative counters (index-
// aligned with the racing order). Only valid between Solve calls.
func (p *Portfolio) WorkerStats() []Stats {
	out := make([]Stats, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.Stats()
	}
	return out
}

// Winner returns the worker index that produced the last definitive
// verdict, or -1 if there has been none. Trace-nondeterministic.
func (p *Portfolio) Winner() int { return p.winner }

// NewVar allocates the same fresh variable in every worker.
func (p *Portfolio) NewVar() cnf.Var {
	v := p.workers[0].NewVar()
	for _, w := range p.workers[1:] {
		w.NewVar()
	}
	return v
}

// NumVars returns the number of allocated variables.
func (p *Portfolio) NumVars() int { return p.workers[0].NumVars() }

// NumClauses returns worker 0's clause count (problem clauses plus
// that worker's learnt/imported clauses; workers diverge in learnt
// clauses, never in problem clauses).
func (p *Portfolio) NumClauses() int { return p.workers[0].NumClauses() }

// AddClause adds a problem clause to every worker. It returns false
// once any worker derives a top-level contradiction — each worker's
// state is a logical consequence of the shared clause database, so
// one worker's contradiction is everyone's.
func (p *Portfolio) AddClause(lits ...cnf.Lit) bool {
	for _, w := range p.workers {
		if !w.AddClause(lits...) {
			p.okay = false
		}
	}
	return p.okay
}

// AddFormula adds every clause of a CNF formula to every worker.
func (p *Portfolio) AddFormula(f *cnf.Formula) bool {
	for _, w := range p.workers {
		if !w.AddFormula(f) {
			p.okay = false
		}
	}
	return p.okay
}

// Okay reports whether the portfolio is still consistent at the top
// level.
func (p *Portfolio) Okay() bool { return p.okay }

// SetDeadline bounds every subsequent Solve call by wall clock; the
// zero time disables the deadline.
func (p *Portfolio) SetDeadline(t time.Time) { p.deadline = t }

// SetContext attaches a cancellation context observed by every
// worker during Solve. A nil context disables cancellation.
func (p *Portfolio) SetContext(ctx context.Context) { p.ctx = ctx }

// Stats returns the sum of all workers' counters (MaxDepth is the
// maximum). Race-free: workers only mutate their counters inside
// Solve, and Solve joins every worker before returning.
func (p *Portfolio) Stats() Stats {
	var total Stats
	for _, w := range p.workers {
		total.Add(w.Stats())
	}
	return total
}

// Snapshot returns the aggregated counters plus worker 0's variable
// and clause counts. Unlike the sequential solver's snapshot it is
// trace-nondeterministic and unsuitable for replay verification;
// journals record it for observability only.
func (p *Portfolio) Snapshot() Snapshot {
	return Snapshot{Stats: p.Stats(), Vars: p.NumVars(), Clauses: p.NumClauses()}
}

// Model returns the satisfying assignment found by the winning
// worker of the last Sat verdict; index by variable.
func (p *Portfolio) Model() []bool { return p.model }

// ModelValue returns the model value of a literal.
func (p *Portfolio) ModelValue(l cnf.Lit) bool {
	v := p.model[l.Var()]
	if l.Neg() {
		return !v
	}
	return v
}

// verdict is one worker's Solve outcome.
type verdict struct {
	id int
	st Status
}

// Solve races every worker on the same assumptions. The first
// definitive SAT/UNSAT verdict wins and cancels the rest; Unknown is
// returned only when every worker exhausted its deadline or context.
// All workers are joined before Solve returns, so the portfolio is
// quiescent — and its aggregate Stats consistent — afterwards.
func (p *Portfolio) Solve(assumptions ...cnf.Lit) Status {
	if !p.okay {
		return Unsat
	}
	// Drain the exchange into every worker *before* the race starts,
	// in fixed order from the parent goroutine. This keeps the set of
	// clauses a worker starts from a deterministic function of the
	// Solve history rather than of how far the earliest-scheduled
	// worker got before the later ones were spawned; during the race
	// itself workers import only at their own restart boundaries.
	for _, w := range p.workers {
		if !w.importShared() {
			p.okay = false
			return Unsat
		}
	}
	base := p.ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	results := make(chan verdict, len(p.workers)) // buffered: sends never block
	var wg sync.WaitGroup
	for i, w := range p.workers {
		w.SetContext(ctx)
		w.SetDeadline(p.deadline)
		wg.Add(1)
		go func(id int, w *Solver) {
			defer wg.Done()
			results <- verdict{id, w.Solve(assumptions...)}
		}(i, w)
	}

	st := Unknown
	p.winner = -1
	for range p.workers {
		v := <-results
		if v.st != Unknown {
			st, p.winner = v.st, v.id
			break
		}
	}
	cancel()
	wg.Wait()

	// Late verdicts from workers that finished before the
	// cancellation landed must agree — the workers share one clause
	// database and are individually sound. A disagreement is a solver
	// bug, and silently picking one answer would corrupt the attack.
	for len(results) > 0 {
		v := <-results
		if v.st != Unknown && st != Unknown && v.st != st {
			panic(fmt.Sprintf("sat: portfolio workers disagree: worker %d says %v, worker %d says %v",
				p.winner, st, v.id, v.st))
		}
		if v.st != Unknown && st == Unknown {
			st, p.winner = v.st, v.id
		}
	}

	if st == Sat {
		p.model = append(p.model[:0], p.workers[p.winner].Model()...)
	}
	if st == Unsat {
		// Workers may legitimately disagree on okay (one may have
		// derived a top-level contradiction from imported clauses);
		// the portfolio is closed for business only when the formula
		// itself — not the assumptions — is contradictory.
		for _, w := range p.workers {
			if !w.Okay() {
				p.okay = false
				break
			}
		}
	}
	return st
}
