package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// threeWayInstances sizes the three-way differential test: full depth
// in a normal build, a 100-instance slice under the race detector —
// the portfolio's goroutine churn is what the race build needs to see,
// not a thousand repetitions of it.
func threeWayInstances() int {
	if raceEnabled {
		return 100
	}
	return 1000
}

// TestDifferentialThreeWay cross-checks the sequential solver against
// 2- and 8-worker portfolios on random small instances, through the
// same incremental script as TestDifferentialVsBruteForce: base solve,
// solve under random assumptions, clause extension, re-solve. All
// three engines must agree with brute force on every step; every SAT
// model is checked against the formula, and every portfolio UNSAT is
// re-confirmed on a fresh sequential solver (no portfolio machinery —
// imported clauses, racing — may be load-bearing for a verdict).
func TestDifferentialThreeWay(t *testing.T) {
	instances := threeWayInstances()
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < instances; i++ {
		nVars := 3 + rng.Intn(10) // 3..12
		nClauses := 1 + rng.Intn(4*nVars)

		f := cnf.NewFormula()
		engines := []struct {
			name string
			eng  Engine
		}{
			{"sequential", New()},
			{"portfolio2", NewPortfolio(2)},
			{"portfolio8", NewPortfolio(8)},
		}
		for v := 0; v < nVars; v++ {
			f.NewVar()
			for _, e := range engines {
				e.eng.NewVar()
			}
		}
		for c := 0; c < nClauses; c++ {
			lits := diffRandClause(rng, nVars)
			f.AddClause(lits...)
			for _, e := range engines {
				e.eng.AddClause(lits...)
			}
		}

		check := func(stage string, assumptions []cnf.Lit) {
			t.Helper()
			want := diffBruteForce(f, nVars, assumptions)
			for _, e := range engines {
				got := e.eng.Solve(assumptions...)
				if (got == Sat) != want || got == Unknown {
					t.Fatalf("instance %d, %s: %s says %v, brute force says sat=%v",
						i, stage, e.name, got, want)
				}
				if got == Sat {
					m := e.eng.Model()
					if !f.Eval(m[:nVars]) {
						t.Fatalf("instance %d, %s: %s model does not satisfy formula", i, stage, e.name)
					}
					for _, a := range assumptions {
						if m[a.Var()] == a.Neg() {
							t.Fatalf("instance %d, %s: %s model violates assumption %v", i, stage, e.name, a)
						}
					}
				}
			}
			if !want {
				s := New()
				s.AddFormula(f)
				if st := s.Solve(assumptions...); st != Unsat {
					t.Fatalf("instance %d, %s: fresh sequential re-confirmation says %v, want Unsat", i, stage, st)
				}
			}
		}

		check("base", nil)

		nAssume := 1 + rng.Intn(3)
		seen := make(map[cnf.Var]bool, nAssume)
		var assumptions []cnf.Lit
		for len(assumptions) < nAssume {
			v := cnf.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			assumptions = append(assumptions, cnf.MkLit(v, rng.Intn(2) == 0))
		}
		check("assumptions", assumptions)

		extra := diffRandClause(rng, nVars)
		f.AddClause(extra...)
		for _, e := range engines {
			e.eng.AddClause(extra...)
		}
		check("extended", nil)
	}
}

// TestPortfolioStatsSumOfParts pins the aggregation contract: after
// any sequence of solves the portfolio's Stats equal the field-wise
// sum (MaxDepth: max) of its workers' stats — no counter is lost or
// double-counted by the racing.
func TestPortfolioStatsSumOfParts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := NewPortfolio(4)
	const nVars = 30
	for v := 0; v < nVars; v++ {
		p.NewVar()
	}
	for round := 0; round < 5; round++ {
		for c := 0; c < 30; c++ {
			p.AddClause(diffRandClause(rng, nVars)...)
		}
		p.Solve()

		var sum Stats
		for _, ws := range p.WorkerStats() {
			sum.Add(ws)
		}
		if got := p.Stats(); got != sum {
			t.Fatalf("round %d: aggregate stats %+v != sum of workers %+v", round, got, sum)
		}
	}
	if p.Stats().Propagations == 0 && p.Stats().Decisions == 0 {
		t.Fatal("no solver work recorded; instances too trivial for the regression")
	}
}

// TestStatsAdd pins the field semantics of Stats.Add: counters sum,
// MaxDepth takes the maximum.
func TestStatsAdd(t *testing.T) {
	a := Stats{Decisions: 1, Propagations: 2, Conflicts: 3, Restarts: 4,
		Learnt: 5, Removed: 6, MaxDepth: 7, Exported: 8, Imported: 9}
	b := Stats{Decisions: 10, Propagations: 20, Conflicts: 30, Restarts: 40,
		Learnt: 50, Removed: 60, MaxDepth: 3, Exported: 80, Imported: 90}
	a.Add(b)
	want := Stats{Decisions: 11, Propagations: 22, Conflicts: 33, Restarts: 44,
		Learnt: 55, Removed: 66, MaxDepth: 7, Exported: 88, Imported: 99}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

// TestPortfolioSharingObserved solves an instance hard enough for the
// workers to learn and publish clauses, then checks the exchange
// counters actually moved — guarding against the sharing hooks
// silently rotting into dead code.
func TestPortfolioSharingObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	p := NewPortfolio(4)
	const nVars = 60
	for v := 0; v < nVars; v++ {
		p.NewVar()
	}
	// ~4.2 clause/var random 3-SAT: hard enough to force conflicts and
	// restarts (where import happens) at this size.
	for c := 0; c < 4*nVars+nVars/5; c++ {
		var lits []cnf.Lit
		seen := map[cnf.Var]bool{}
		for len(lits) < 3 {
			v := cnf.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			lits = append(lits, cnf.MkLit(v, rng.Intn(2) == 0))
		}
		p.AddClause(lits...)
	}
	if st := p.Solve(); st == Unknown {
		t.Fatalf("solve returned %v", st)
	}
	if p.Stats().Exported == 0 {
		t.Fatal("no clauses exported: sharing hooks are dead")
	}
	// Import is opportunistic (it happens at restarts), so it is not
	// asserted > 0: a worker may win before its first restart.
}
