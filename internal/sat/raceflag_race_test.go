//go:build race

package sat

// raceEnabled reports that this test binary was built with the race
// detector; heavyweight differential tests run a reduced slice.
const raceEnabled = true
