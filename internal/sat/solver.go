// Package sat implements an incremental CDCL (conflict-driven clause
// learning) SAT solver in the MiniSat lineage: two-watched-literal
// propagation, VSIDS decision heuristic with phase saving, first-UIP
// conflict analysis with non-chronological backtracking, Luby restarts
// and activity/LBD-based learnt-clause database reduction.
//
// The paper's SAT-hardness argument is about exactly this algorithm
// family (it cites DPLL/CDCL and the CaDiCaL solver); the RIL-Block
// construction is designed to force deep backtracking in this search.
package sat

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget or deadline exhausted
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Stats accumulates solver counters across Solve calls.
type Stats struct {
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
	Learnt       int64 `json:"learnt"`
	Removed      int64 `json:"removed"`
	MaxDepth     int   `json:"max_depth"` // deepest decision level reached
	// Portfolio clause sharing: learnt clauses published to / adopted
	// from the exchange. Zero for a sequential solver, so snapshots
	// written by older versions compare equal.
	Exported int64 `json:"exported,omitempty"`
	Imported int64 `json:"imported,omitempty"`
}

// Add accumulates other into st field-wise; MaxDepth takes the max
// (it is a high-water mark, not a counter). This is the portfolio's
// aggregation rule: the parent's Stats are the sum of its workers'.
func (st *Stats) Add(other Stats) {
	st.Decisions += other.Decisions
	st.Propagations += other.Propagations
	st.Conflicts += other.Conflicts
	st.Restarts += other.Restarts
	st.Learnt += other.Learnt
	st.Removed += other.Removed
	st.Exported += other.Exported
	st.Imported += other.Imported
	if other.MaxDepth > st.MaxDepth {
		st.MaxDepth = other.MaxDepth
	}
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

type clause struct {
	lits    []cnf.Lit
	act     float32
	lbd     int32
	learnt  bool
	deleted bool
}

type watcher struct {
	cref    int     // clause index
	blocker cnf.Lit // a literal whose truth satisfies the clause
}

// Solver is an incremental CDCL solver. The zero value is not usable;
// call New.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by literal

	assigns  []int8  // per variable
	level    []int32 // per variable
	reason   []int32 // per variable: clause index or -1
	polarity []bool  // phase saving: last assigned value
	activity []float64
	varInc   float64

	heap    *varHeap
	trail   []cnf.Lit
	trailQ  int // propagation queue head
	limits  []int
	assumps []cnf.Lit
	seen    []bool // scratch for conflict analysis

	claInc    float64
	learntCnt int
	maxLearnt float64

	okay  bool // false once toplevel conflict found
	model []bool

	rng        *rand.Rand
	cfg        Config
	stats      Stats
	deadline   time.Time
	confBudget int64           // remaining conflicts allowed; <0 means unlimited
	ctx        context.Context // optional cancellation; nil means none

	// Portfolio clause sharing (nil outside a portfolio).
	exch       *ClauseExchange
	exchID     int
	exchCursor uint64
	exchBuf    []SharedClause // reusable collect scratch
}

// New returns an empty solver with the default (historical) search
// configuration.
func New() *Solver { return NewWithConfig(DefaultConfig()) }

// NewWithConfig returns an empty solver searching under cfg. The
// configuration affects heuristic order only, never verdicts; a given
// (config, clause sequence) pair is fully deterministic.
func NewWithConfig(cfg Config) *Solver {
	cfg = cfg.sanitize()
	s := &Solver{
		varInc:     1,
		claInc:     1,
		okay:       true,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		confBudget: -1,
	}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() cnf.Var {
	v := cnf.Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.polarity = append(s.polarity, !s.cfg.InvertPhase) // initial phase
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(int(v))
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

func (s *Solver) ensureVar(v cnf.Var) {
	for cnf.Var(len(s.assigns)) <= v {
		s.NewVar()
	}
}

func (s *Solver) litValue(l cnf.Lit) int8 {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -a
	}
	return a
}

// AddFormula adds every clause of a CNF formula.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	for cnf.Var(s.NumVars()) < cnf.Var(f.NumVars) {
		s.NewVar()
	}
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

// AddClause adds a problem clause. It returns false if the solver is
// now in an unsatisfiable state at the top level. Adding clauses is
// legal between Solve calls (incremental solving); the solver
// backtracks to level 0 first.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.okay {
		return false
	}
	s.cancelUntil(0)
	for _, l := range lits {
		s.ensureVar(l.Var())
	}
	// Normalize: drop duplicates and false lits; detect tautology/satisfied.
	norm := make([]cnf.Lit, 0, len(lits))
	seen := map[cnf.Lit]bool{}
	for _, l := range lits {
		switch {
		case s.litValue(l) == lTrue:
			return true // already satisfied at level 0
		case s.litValue(l) == lFalse:
			continue // drop
		case seen[l.Not()]:
			return true // tautology
		case seen[l]:
			continue
		}
		seen[l] = true
		norm = append(norm, l)
	}
	switch len(norm) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], -1)
		if s.propagate() >= 0 {
			s.okay = false
			return false
		}
		return true
	}
	s.attachClause(norm, false)
	return true
}

func (s *Solver) attachClause(lits []cnf.Lit, learnt bool) int {
	cref := len(s.clauses)
	s.clauses = append(s.clauses, clause{lits: lits, learnt: learnt, act: 0})
	s.watches[lits[0].Not()] = append(s.watches[lits[0].Not()], watcher{cref, lits[1]})
	s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{cref, lits[0]})
	if learnt {
		s.learntCnt++
	}
	return cref
}

func (s *Solver) uncheckedEnqueue(l cnf.Lit, from int32) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.polarity[v] = !l.Neg()
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.limits) }

// propagate performs unit propagation. It returns the index of a
// conflicting clause, or -1 if no conflict.
func (s *Solver) propagate() int {
	for s.trailQ < len(s.trail) {
		p := s.trail[s.trailQ]
		s.trailQ++
		s.stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.cref]
			if c.deleted {
				continue
			}
			lits := c.lits
			// Ensure lits[1] is the false watched literal p.Not().
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.litValue(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.litValue(first) == lFalse {
				// Conflict: keep the remaining watchers and bail.
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				s.trailQ = len(s.trail)
				return w.cref
			}
			s.uncheckedEnqueue(first, int32(w.cref))
		}
		s.watches[p] = kept
	}
	return -1
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.limits[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = -1
		if !s.heap.inHeap(int(v)) {
			s.heap.insert(int(v))
		}
	}
	s.trail = s.trail[:bound]
	s.trailQ = bound
	s.limits = s.limits[:lvl]
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heap.inHeap(int(v)) {
		s.heap.decrease(int(v))
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += float32(s.claInc)
	if c.act > 1e30 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-30
		}
		s.claInc *= 1e-30
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{0} // placeholder for asserting literal
	seen := s.seen
	counter := 0
	p := cnf.Lit(-1)
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p != cnf.Lit(-1) {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal on trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = int(s.reason[v])
	}

	// Clause minimization: drop literals implied by the rest. The vars
	// of learnt[1:] are still marked in seen from the resolution loop.
	marked := make([]cnf.Var, 0, len(learnt))
	for _, l := range learnt[1:] {
		marked = append(marked, l.Var())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r < 0 {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range s.clauses[r].lits[1:] {
			if !seen[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]
	for _, v := range marked {
		seen[v] = false
	}

	// Backtrack level: max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

func (s *Solver) computeLBD(lits []cnf.Lit) int32 {
	levels := map[int32]bool{}
	for _, l := range lits {
		levels[s.level[l.Var()]] = true
	}
	return int32(len(levels))
}

func (s *Solver) pickBranchLit() cnf.Lit {
	// Occasional random decision diversifies the search.
	if s.cfg.RandomFreq > 0 && s.rng.Float64() < s.cfg.RandomFreq {
		v := cnf.Var(s.rng.Intn(len(s.assigns)))
		if s.assigns[v] == lUndef {
			return cnf.MkLit(v, !s.polarity[v])
		}
	}
	for {
		if s.heap.empty() {
			return cnf.Lit(-1)
		}
		v := cnf.Var(s.heap.removeMin())
		if s.assigns[v] == lUndef {
			return cnf.MkLit(v, !s.polarity[v])
		}
	}
}

// reduceDB removes roughly half of the learnt clauses, preferring high
// LBD and low activity. Glue clauses (LBD <= 2) and reason clauses are
// kept.
func (s *Solver) reduceDB() {
	type cand struct {
		cref int
		act  float32
		lbd  int32
	}
	locked := make(map[int]bool)
	for _, v := range s.trail {
		if r := s.reason[v.Var()]; r >= 0 {
			locked[int(r)] = true
		}
	}
	var cands []cand
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && c.lbd > 2 && !locked[i] && len(c.lits) > 2 {
			cands = append(cands, cand{i, c.act, c.lbd})
		}
	}
	if len(cands) < 2 {
		return
	}
	// Partial sort: delete the worse half (high lbd, low act first).
	worse := func(a, b cand) bool {
		if a.lbd != b.lbd {
			return a.lbd > b.lbd
		}
		return a.act < b.act
	}
	sort.Slice(cands, func(i, j int) bool { return worse(cands[i], cands[j]) })
	for _, c := range cands[:len(cands)/2] {
		s.clauses[c.cref].deleted = true
		s.clauses[c.cref].lits = nil
		s.learntCnt--
		s.stats.Removed++
	}
}

// luby returns the x-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// SetDeadline aborts Solve with Unknown after the wall-clock deadline.
// The zero time disables the deadline.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// SetConflictBudget aborts Solve with Unknown after n conflicts.
// Negative n means unlimited.
func (s *Solver) SetConflictBudget(n int64) { s.confBudget = n }

// SetContext attaches a cancellation context: once ctx is done, the
// running (and any future) Solve aborts with Unknown at the next abort
// check. A nil context disables cancellation. The check shares the
// periodic abort poll with the deadline, so cancellation latency is a
// few hundred decisions, not instantaneous.
func (s *Solver) SetContext(ctx context.Context) { s.ctx = ctx }

// Stats returns accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats zeroes all counters. Clauses, assignments and heuristic
// state are untouched, so incremental solving continues unaffected;
// only the observation window restarts.
func (s *Solver) ResetStats() { s.stats = Stats{} }

// RestoreStats replaces the cumulative counters, e.g. when a resumed
// attack wants post-restore observations to continue from journaled
// totals instead of zero.
func (s *Solver) RestoreStats(st Stats) { s.stats = st }

// NumClauses returns the number of attached clauses, problem and learnt
// (deleted-but-not-compacted learnt clauses included).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Snapshot captures the externally observable solver state at a
// checkpoint: cumulative counters plus variable and clause counts. The
// solver is deterministic (fixed internal PRNG seed, no wall-clock
// dependence in the search itself), so re-running the same sequence of
// AddClause/Solve calls reproduces the same Snapshot — which is how the
// attack journal's replay path verifies it rebuilt the same solver.
type Snapshot struct {
	Stats   Stats `json:"stats"`
	Vars    int   `json:"vars"`
	Clauses int   `json:"clauses"`
}

// Snapshot returns the current state snapshot.
func (s *Solver) Snapshot() Snapshot {
	return Snapshot{Stats: s.stats, Vars: s.NumVars(), Clauses: s.NumClauses()}
}

// Okay reports whether the solver is still consistent at the top level
// (false once an unconditional contradiction has been derived).
func (s *Solver) Okay() bool { return s.okay }

// Model returns the satisfying assignment found by the last Sat solve;
// index by variable.
func (s *Solver) Model() []bool { return s.model }

// ModelValue returns the model value of a literal.
func (s *Solver) ModelValue(l cnf.Lit) bool {
	v := s.model[l.Var()]
	if l.Neg() {
		return !v
	}
	return v
}

// solveCalls counts every Solver.Solve invocation in the process,
// across all solver instances (portfolio workers included). It backs
// SolveCallsTotal, the accounting hook the result-cache differential
// tests use to prove a warm sweep ran zero solver calls; it will also
// feed the serving daemon's /metrics.
var solveCalls atomic.Int64

// SolveCallsTotal returns the process-wide number of Solve calls so
// far. Monotonic; compare two readings to count a region's calls.
func SolveCallsTotal() int64 { return solveCalls.Load() }

// Solve searches for a satisfying assignment under the given
// assumptions. It is incremental: clauses may be added between calls.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	solveCalls.Add(1)
	if !s.okay {
		return Unsat
	}
	for _, a := range assumptions {
		s.ensureVar(a.Var())
	}
	s.assumps = assumptions
	defer s.cancelUntil(0)

	s.maxLearnt = float64(len(s.clauses))*0.3 + 1000
	var restarts int64
	checkCounter := 0

	// Foreign shared clauses are adopted only at restart boundaries
	// (and by Portfolio.Solve before the race starts, in the parent):
	// a worker that never restarts keeps a trajectory that is a pure
	// function of its config and the clause database, untouched by the
	// race's scheduling.

	//rilvet:ignore ctx-loop cancellation is handled inside search via s.aborted(), which polls the deadline, conflict budget and SetContext context every few thousand conflicts
	for {
		budget := luby(restarts) * s.cfg.RestartUnit
		st := s.search(budget, &checkCounter)
		if st != Unknown {
			return st
		}
		// Distinguish restart from abort.
		if s.aborted() {
			return Unknown
		}
		restarts++
		s.stats.Restarts++
		s.cancelUntil(0)
		// Restart boundary: the trail is back at level 0, the cheapest
		// moment to adopt foreign learnt clauses.
		if !s.importShared() {
			s.okay = false
			return Unsat
		}
	}
}

// SetExchange attaches the solver to a portfolio clause exchange as
// reader/writer id. Learnt clauses with LBD at most the config's
// ShareLBDCap are published; foreign clauses are adopted at restart
// boundaries. Must be called before the first Solve.
func (s *Solver) SetExchange(x *ClauseExchange, id int) {
	s.exch = x
	s.exchID = id
	s.exchCursor = x.Cursor()
}

// importShared adopts every foreign shared clause published since the
// last import. It must be called at decision level 0. It reports
// false when an adopted clause produced a top-level conflict — the
// formula is UNSAT (shared clauses are logical consequences of the
// common clause database, so the verdict is sound).
func (s *Solver) importShared() bool {
	if s.exch == nil {
		return true
	}
	s.exchCursor, s.exchBuf = s.exch.Collect(s.exchID, s.exchCursor, s.exchBuf[:0])
	for _, sc := range s.exchBuf {
		if !s.importClause(sc.Lits, sc.LBD) {
			return false
		}
	}
	return true
}

// importClause adds one foreign learnt clause at decision level 0,
// simplifying against the level-0 trail. It reports false on a
// top-level conflict. Shared clauses come out of another worker's
// conflict analysis, so they contain no duplicate or complementary
// literals.
func (s *Solver) importClause(lits []cnf.Lit, lbd int32) bool {
	if !s.okay {
		return false
	}
	norm := make([]cnf.Lit, 0, len(lits))
	for _, l := range lits {
		s.ensureVar(l.Var())
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		norm = append(norm, l)
	}
	s.stats.Imported++
	switch len(norm) {
	case 0:
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], -1)
		return s.propagate() < 0
	}
	cref := s.attachClause(norm, true)
	s.clauses[cref].lbd = lbd
	return true
}

func (s *Solver) aborted() bool {
	if s.confBudget >= 0 && s.stats.Conflicts >= s.confBudget {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			return true
		default:
		}
	}
	return false
}

// search runs CDCL until a result, a conflict budget for this restart
// is exhausted (returns Unknown), or an abort condition triggers.
func (s *Solver) search(nConflicts int64, checkCounter *int) Status {
	var conflictsHere int64
	for {
		confl := s.propagate()
		if confl >= 0 {
			// Conflict.
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// Never backtrack past the assumption levels without
			// reporting: if the asserting literal contradicts an
			// assumption we will discover it on re-propagation.
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], -1)
				if s.exch != nil {
					s.exch.Publish(s.exchID, 1, learnt)
					s.stats.Exported++
				}
			} else {
				cref := s.attachClause(learnt, true)
				lbd := s.computeLBD(learnt)
				s.clauses[cref].lbd = lbd
				s.bumpClause(&s.clauses[cref])
				s.uncheckedEnqueue(learnt[0], int32(cref))
				if s.exch != nil && lbd <= s.cfg.ShareLBDCap {
					s.exch.Publish(s.exchID, lbd, learnt)
					s.stats.Exported++
				}
			}
			s.stats.Learnt++
			s.varInc /= s.cfg.VarDecay
			s.claInc /= s.cfg.ClauseDecay
			if float64(s.learntCnt) > s.maxLearnt {
				s.reduceDB()
				s.maxLearnt *= 1.1
			}
			continue
		}

		// No conflict.
		*checkCounter++
		if *checkCounter&255 == 0 && s.aborted() {
			return Unknown
		}
		if conflictsHere >= nConflicts {
			return Unknown // restart
		}

		// Assumptions before free decisions.
		var next cnf.Lit = cnf.Lit(-1)
		for s.decisionLevel() < len(s.assumps) {
			a := s.assumps[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				s.limits = append(s.limits, len(s.trail)) // dummy level
				continue
			case lFalse:
				return Unsat // conflicting assumptions
			default:
				next = a
			}
			break
		}
		if next == cnf.Lit(-1) {
			next = s.pickBranchLit()
			if next == cnf.Lit(-1) {
				// All variables assigned: model found.
				s.model = make([]bool, len(s.assigns))
				for v, a := range s.assigns {
					s.model[v] = a == lTrue
				}
				return Sat
			}
			s.stats.Decisions++
		}
		s.limits = append(s.limits, len(s.trail))
		if d := s.decisionLevel(); d > s.stats.MaxDepth {
			s.stats.MaxDepth = d
		}
		s.uncheckedEnqueue(next, -1)
	}
}

// SolveFormula is a convenience: build a solver over f and solve.
func SolveFormula(f *cnf.Formula, deadline time.Time) (Status, []bool) {
	s := New()
	if !s.AddFormula(f) {
		return Unsat, nil
	}
	if !deadline.IsZero() {
		s.SetDeadline(deadline)
	}
	st := s.Solve()
	return st, s.model
}

// String summarizes stats. The clause-sharing counters only appear
// when a portfolio actually exchanged clauses, so sequential output
// is unchanged.
func (st Stats) String() string {
	s := fmt.Sprintf("decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d removed=%d maxdepth=%d",
		st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Learnt, st.Removed, st.MaxDepth)
	if st.Exported != 0 || st.Imported != 0 {
		s += fmt.Sprintf(" exported=%d imported=%d", st.Exported, st.Imported)
	}
	return s
}
