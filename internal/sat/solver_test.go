package sat

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
)

func lit(f *cnf.Formula, v int, neg bool) cnf.Lit {
	for f.NumVars <= v {
		f.NewVar()
	}
	return cnf.MkLit(cnf.Var(v), neg)
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(cnf.MkLit(a, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Model()[a] {
		t.Error("unit clause not honored")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(cnf.MkLit(a, false)) {
		t.Fatal("first unit rejected")
	}
	if s.AddClause(cnf.MkLit(a, true)) {
		if st := s.Solve(); st != Unsat {
			t.Fatalf("status %v, want UNSAT", st)
		}
	}
	if s.Okay() {
		t.Error("solver should be permanently inconsistent")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Error("empty clause must report conflict")
	}
	if st := s.Solve(); st != Unsat {
		t.Error("solver with empty clause must be UNSAT")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classic UNSAT family that
	// requires real search (resolution lower bounds are exponential).
	for _, n := range []int{3, 4, 5} {
		f := cnf.NewFormula()
		v := func(p, h int) cnf.Lit { return lit(f, p*n+h, false) }
		for p := 0; p <= n; p++ {
			var c []cnf.Lit
			for h := 0; h < n; h++ {
				c = append(c, v(p, h))
			}
			f.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					f.AddClause(v(p1, h).Not(), v(p2, h).Not())
				}
			}
		}
		st, _ := SolveFormula(f, time.Time{})
		if st != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", n+1, n, st)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a cycle of length 6 (2-colorable, so certainly 3-colorable).
	const n, k = 6, 3
	f := cnf.NewFormula()
	v := func(node, color int) cnf.Lit { return lit(f, node*k+color, false) }
	for node := 0; node < n; node++ {
		f.AddClause(v(node, 0), v(node, 1), v(node, 2))
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				f.AddClause(v(node, c1).Not(), v(node, c2).Not())
			}
		}
	}
	for node := 0; node < n; node++ {
		next := (node + 1) % n
		for c := 0; c < k; c++ {
			f.AddClause(v(node, c).Not(), v(next, c).Not())
		}
	}
	st, model := SolveFormula(f, time.Time{})
	if st != Sat {
		t.Fatalf("cycle coloring = %v, want SAT", st)
	}
	// Verify the model is a proper coloring.
	color := make([]int, n)
	for node := 0; node < n; node++ {
		color[node] = -1
		for c := 0; c < k; c++ {
			if model[node*k+c] {
				color[node] = c
			}
		}
		if color[node] < 0 {
			t.Fatalf("node %d uncolored", node)
		}
	}
	for node := 0; node < n; node++ {
		if color[node] == color[(node+1)%n] {
			t.Errorf("edge %d-%d monochromatic", node, (node+1)%n)
		}
	}
}

// bruteForce reports satisfiability by enumeration (vars <= 20).
func bruteForce(f *cnf.Formula) bool {
	n := f.NumVars
	assign := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i := 0; i < n; i++ {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nv := 4 + rng.Intn(9) // 4..12 vars
		nc := int(float64(nv) * (2.0 + rng.Float64()*3.0))
		f := cnf.NewFormula()
		for i := 0; i < nv; i++ {
			f.NewVar()
		}
		for c := 0; c < nc; c++ {
			var cl []cnf.Lit
			for k := 0; k < 3; k++ {
				cl = append(cl, cnf.MkLit(cnf.Var(rng.Intn(nv)), rng.Intn(2) == 0))
			}
			f.AddClause(cl...)
		}
		want := bruteForce(f)
		st, model := SolveFormula(f, time.Time{})
		if want && st != Sat {
			t.Fatalf("trial %d: solver says %v, brute force says SAT", trial, st)
		}
		if !want && st != Unsat {
			t.Fatalf("trial %d: solver says %v, brute force says UNSAT", trial, st)
		}
		if st == Sat && !f.Eval(model[:f.NumVars]) {
			t.Fatalf("trial %d: returned model does not satisfy formula", trial)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	if st := s.Solve(); st != Sat {
		t.Fatal("phase 1 should be SAT")
	}
	s.AddClause(cnf.MkLit(a, true))
	s.AddClause(cnf.MkLit(c, false))
	if st := s.Solve(); st != Sat {
		t.Fatal("phase 2 should be SAT")
	}
	m := s.Model()
	if m[a] || !m[b] || !m[c] {
		t.Errorf("model %v violates added units", m[:3])
	}
	s.AddClause(cnf.MkLit(b, true))
	if st := s.Solve(); st != Unsat {
		t.Fatal("phase 3 should be UNSAT")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false)) // a ∨ b
	if st := s.Solve(cnf.MkLit(a, true)); st != Sat {
		t.Fatal("assuming ¬a should still be SAT via b")
	}
	if !s.Model()[b] {
		t.Error("model must set b under assumption ¬a")
	}
	if st := s.Solve(cnf.MkLit(a, true), cnf.MkLit(b, true)); st != Unsat {
		t.Fatal("assuming ¬a ∧ ¬b should be UNSAT")
	}
	// Solver must remain usable: no permanent damage from assumptions.
	if st := s.Solve(); st != Sat {
		t.Fatal("solver unusable after assumption UNSAT")
	}
	if st := s.Solve(cnf.MkLit(a, false)); st != Sat {
		t.Fatal("assuming a should be SAT")
	}
	if !s.Model()[a] {
		t.Error("assumption not reflected in model")
	}
}

func TestConflictingAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(a, false))
	if st := s.Solve(cnf.MkLit(a, false), cnf.MkLit(a, true)); st != Unsat {
		t.Error("directly contradictory assumptions should be UNSAT")
	}
	if st := s.Solve(); st != Sat {
		t.Error("solver unusable afterwards")
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny conflict budget must
	// return Unknown rather than running to completion.
	n := 8
	f := cnf.NewFormula()
	v := func(p, h int) cnf.Lit { return lit(f, p*n+h, false) }
	for p := 0; p <= n; p++ {
		var c []cnf.Lit
		for h := 0; h < n; h++ {
			c = append(c, v(p, h))
		}
		f.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	s := New()
	s.AddFormula(f)
	s.SetConflictBudget(50)
	if st := s.Solve(); st != Unknown {
		t.Errorf("budgeted solve = %v, want UNKNOWN", st)
	}
	if s.Stats().Conflicts < 50 {
		t.Errorf("conflicts = %d, want >= 50", s.Stats().Conflicts)
	}
}

func TestDeadline(t *testing.T) {
	n := 10 // PHP(11,10) is far beyond a 20ms budget
	f := cnf.NewFormula()
	v := func(p, h int) cnf.Lit { return lit(f, p*n+h, false) }
	for p := 0; p <= n; p++ {
		var c []cnf.Lit
		for h := 0; h < n; h++ {
			c = append(c, v(p, h))
		}
		f.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	s := New()
	s.AddFormula(f)
	s.SetDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)
	if st != Unknown {
		t.Skipf("instance solved within deadline (%v) — acceptable on fast machines", st)
	}
	if elapsed > 3*time.Second {
		t.Errorf("deadline ignored: ran %v", elapsed)
	}
}

func TestModelValue(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(cnf.MkLit(a, true)) // force ¬a
	if st := s.Solve(); st != Sat {
		t.Fatal("should be SAT")
	}
	if s.ModelValue(cnf.MkLit(a, false)) {
		t.Error("a should be false")
	}
	if !s.ModelValue(cnf.MkLit(a, true)) {
		t.Error("¬a should be true")
	}
}

func TestDuplicateAndTautologicalClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(a, false), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(a, true)) // tautology
	if st := s.Solve(); st != Sat {
		t.Fatal("should be SAT")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	f := cnf.NewFormula()
	rng := rand.New(rand.NewSource(3))
	const nv = 40
	for i := 0; i < nv; i++ {
		f.NewVar()
	}
	for c := 0; c < 170; c++ {
		var cl []cnf.Lit
		for k := 0; k < 3; k++ {
			cl = append(cl, cnf.MkLit(cnf.Var(rng.Intn(nv)), rng.Intn(2) == 0))
		}
		f.AddClause(cl...)
	}
	s := New()
	s.AddFormula(f)
	s.Solve()
	st := s.Stats()
	if st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("no work recorded: %+v", st)
	}
}

func TestXorChainScaling(t *testing.T) {
	// x1 ⊕ x2 ⊕ ... ⊕ xn = 1 with all xi forced 0 except none: SAT with
	// odd parity; verify the solver handles long implication chains.
	const n = 200
	f := cnf.NewFormula()
	prev := f.NewVar()
	for i := 1; i < n; i++ {
		x := f.NewVar()
		out := f.NewVar()
		a, b, o := cnf.MkLit(prev, false), cnf.MkLit(x, false), cnf.MkLit(out, false)
		f.AddClause(o.Not(), a, b)
		f.AddClause(o.Not(), a.Not(), b.Not())
		f.AddClause(o, a.Not(), b)
		f.AddClause(o, a, b.Not())
		prev = out
	}
	f.AddClause(cnf.MkLit(prev, false)) // final parity must be 1
	st, model := SolveFormula(f, time.Time{})
	if st != Sat {
		t.Fatalf("xor chain = %v, want SAT", st)
	}
	if !f.Eval(model[:f.NumVars]) {
		t.Fatal("model does not satisfy xor chain")
	}
}
