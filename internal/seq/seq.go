// Package seq handles sequential circuits: a combinational core plus D
// flip-flops, as used by the ISCAS-89/ITC-99 benchmarks the paper
// locks. It provides cycle-accurate simulation, full-scan conversion
// (the SAT-attack threat model used everywhere else in this library)
// and time-frame unrolling (the standard reduction behind sequential
// attacks when scan access is absent).
package seq

import (
	"fmt"
	"io"

	"repro/internal/netlist"
)

// Circuit is a sequential circuit. Comb is the combinational core in
// the scan-converted layout produced by netlist.ParseBenchSeq: its
// inputs are the primary inputs followed by the NumFF state bits, its
// outputs the primary outputs followed by the NumFF next-state bits.
type Circuit struct {
	Name  string
	Comb  *netlist.Netlist
	NumPI int
	NumPO int
	NumFF int
}

// New wraps a combinational core with the given flip-flop count.
func New(comb *netlist.Netlist, numFF int) (*Circuit, error) {
	if numFF < 0 || numFF > len(comb.Inputs) || numFF > len(comb.Outputs) {
		return nil, fmt.Errorf("seq: %d FFs incompatible with %d inputs / %d outputs",
			numFF, len(comb.Inputs), len(comb.Outputs))
	}
	return &Circuit{
		Name:  comb.Name,
		Comb:  comb,
		NumPI: len(comb.Inputs) - numFF,
		NumPO: len(comb.Outputs) - numFF,
		NumFF: numFF,
	}, nil
}

// FromBench parses a sequential .bench file.
func FromBench(name string, r io.Reader) (*Circuit, error) {
	nl, nFF, err := netlist.ParseBenchSeq(name, r)
	if err != nil {
		return nil, err
	}
	return New(nl, nFF)
}

// State is the flip-flop contents.
type State struct {
	FF []bool
}

// Reset returns the all-zero power-on state.
func (c *Circuit) Reset() *State { return &State{FF: make([]bool, c.NumFF)} }

// Clone copies a state.
func (s *State) Clone() *State { return &State{FF: append([]bool(nil), s.FF...)} }

// Stepper simulates the circuit cycle by cycle.
type Stepper struct {
	c   *Circuit
	sim *netlist.Simulator
}

// NewStepper prepares a cycle simulator.
func (c *Circuit) NewStepper() (*Stepper, error) {
	sim, err := netlist.NewSimulator(c.Comb)
	if err != nil {
		return nil, err
	}
	return &Stepper{c: c, sim: sim}, nil
}

// Step evaluates one clock cycle: it returns the primary outputs for
// the given inputs and current state, and the next state.
func (st *Stepper) Step(state *State, pi []bool) ([]bool, *State, error) {
	if len(pi) != st.c.NumPI {
		return nil, nil, fmt.Errorf("seq: got %d primary inputs, want %d", len(pi), st.c.NumPI)
	}
	if len(state.FF) != st.c.NumFF {
		return nil, nil, fmt.Errorf("seq: state width %d, want %d", len(state.FF), st.c.NumFF)
	}
	in := make([]bool, 0, st.c.NumPI+st.c.NumFF)
	in = append(in, pi...)
	in = append(in, state.FF...)
	out := st.sim.Eval(in)
	po := append([]bool(nil), out[:st.c.NumPO]...)
	next := &State{FF: append([]bool(nil), out[st.c.NumPO:]...)}
	return po, next, nil
}

// Simulate runs the stimuli from the initial state, returning the
// primary outputs per cycle and the final state.
func (c *Circuit) Simulate(init *State, stimuli [][]bool) ([][]bool, *State, error) {
	st, err := c.NewStepper()
	if err != nil {
		return nil, nil, err
	}
	state := init.Clone()
	outs := make([][]bool, len(stimuli))
	for t, pi := range stimuli {
		var po []bool
		po, state, err = st.Step(state, pi)
		if err != nil {
			return nil, nil, err
		}
		outs[t] = po
	}
	return outs, state, nil
}

// ScanConvert returns the full-scan combinational view (identical to
// what netlist.ParseBench produces directly): state bits become
// primary inputs, next-state bits primary outputs.
func (c *Circuit) ScanConvert() *netlist.Netlist { return c.Comb.Clone() }

// Unroll performs time-frame expansion over the given number of
// cycles: the result is a purely combinational netlist whose inputs
// are the initial state followed by per-cycle primary inputs, and
// whose outputs are the per-cycle primary outputs followed by the
// final state. Sequential attacks without scan access operate on this
// expansion.
func (c *Circuit) Unroll(cycles int) (*netlist.Netlist, error) {
	if cycles < 1 {
		return nil, fmt.Errorf("seq: cycles must be >= 1")
	}
	u := netlist.New(fmt.Sprintf("%s_u%d", c.Name, cycles))
	// Initial state inputs.
	state := make([]int, c.NumFF)
	for i := range state {
		state[i] = u.AddInput(fmt.Sprintf("s0_%d", i))
	}
	// Per-cycle primary inputs.
	piIDs := make([][]int, cycles)
	for t := 0; t < cycles; t++ {
		piIDs[t] = make([]int, c.NumPI)
		for i := 0; i < c.NumPI; i++ {
			piIDs[t][i] = u.AddInput(fmt.Sprintf("pi%d_%d", t, i))
		}
	}

	order, err := c.Comb.TopoOrder()
	if err != nil {
		return nil, err
	}
	inputPos := make(map[int]int, len(c.Comb.Inputs)) // gate id -> input index
	for i, id := range c.Comb.Inputs {
		inputPos[id] = i
	}

	var poIDs [][]int
	for t := 0; t < cycles; t++ {
		// Copy the combinational core for frame t.
		mapID := make([]int, c.Comb.NumGates())
		for _, id := range order {
			g := &c.Comb.Gates[id]
			if g.Type == netlist.Input {
				pos := inputPos[id]
				if pos < c.NumPI {
					mapID[id] = piIDs[t][pos]
				} else {
					mapID[id] = state[pos-c.NumPI]
				}
				continue
			}
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = mapID[f]
			}
			mapID[id] = u.AddGate(fmt.Sprintf("f%d_%s", t, g.Name), g.Type, fanin...)
		}
		pos := make([]int, c.NumPO)
		for i := 0; i < c.NumPO; i++ {
			pos[i] = mapID[c.Comb.Outputs[i]]
		}
		poIDs = append(poIDs, pos)
		next := make([]int, c.NumFF)
		for i := 0; i < c.NumFF; i++ {
			next[i] = mapID[c.Comb.Outputs[c.NumPO+i]]
		}
		state = next
	}
	for _, pos := range poIDs {
		for _, id := range pos {
			u.MarkOutput(id)
		}
	}
	for _, id := range state {
		u.MarkOutput(id)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// WriteBench emits the circuit in sequential .bench form (DFF gates
// restored).
func (c *Circuit) WriteBench(w io.Writer) error {
	// Rebuild a netlist view with DFF gates. We can't express DFFs in
	// the netlist type, so emit text directly from the comb layout.
	nl := c.Comb
	fmt.Fprintf(w, "# %s (sequential: %d PIs, %d POs, %d DFFs)\n", c.Name, c.NumPI, c.NumPO, c.NumFF)
	for i := 0; i < c.NumPI; i++ {
		fmt.Fprintf(w, "INPUT(%s)\n", nl.Gates[nl.Inputs[i]].Name)
	}
	for i := 0; i < c.NumPO; i++ {
		fmt.Fprintf(w, "OUTPUT(%s)\n", nl.Gates[nl.Outputs[i]].Name)
	}
	for i := 0; i < c.NumFF; i++ {
		q := nl.Gates[nl.Inputs[c.NumPI+i]].Name
		d := nl.Gates[nl.Outputs[c.NumPO+i]].Name
		fmt.Fprintf(w, "%s = DFF(%s)\n", q, d)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := &nl.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = nl.Gates[f].Name
		}
		op := g.Type.String()
		switch g.Type {
		case netlist.Not:
			op = "NOT"
		case netlist.Buf:
			op = "BUFF"
		}
		fmt.Fprintf(w, "%s = %s(%s)\n", g.Name, op, joinNames(names))
	}
	return nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
