package seq

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/netlist"
)

// counterBench is a 3-bit synchronous counter with enable: q += en.
const counterBench = `
INPUT(en)
OUTPUT(carry)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
d0 = XOR(q0, en)
c0 = AND(q0, en)
d1 = XOR(q1, c0)
c1 = AND(q1, c0)
d2 = XOR(q2, c1)
carry = AND(q2, c1)
`

func parseCounter(t *testing.T) *Circuit {
	t.Helper()
	c, err := FromBench("counter", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromBenchGeometry(t *testing.T) {
	c := parseCounter(t)
	if c.NumPI != 1 || c.NumPO != 1 || c.NumFF != 3 {
		t.Fatalf("geometry PI=%d PO=%d FF=%d, want 1/1/3", c.NumPI, c.NumPO, c.NumFF)
	}
}

func TestCounterCounts(t *testing.T) {
	c := parseCounter(t)
	st, err := c.NewStepper()
	if err != nil {
		t.Fatal(err)
	}
	state := c.Reset()
	value := func(s *State) int {
		v := 0
		for i, b := range s.FF {
			if b {
				v |= 1 << i
			}
		}
		return v
	}
	carries := 0
	for cycle := 1; cycle <= 20; cycle++ {
		po, next, err := st.Step(state, []bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if po[0] {
			carries++
		}
		state = next
		if got, want := value(state), cycle%8; got != want {
			t.Fatalf("cycle %d: counter = %d, want %d", cycle, got, want)
		}
	}
	if carries != 2 { // overflow at cycles 8 and 16
		t.Errorf("saw %d carries in 20 cycles, want 2", carries)
	}
	// Enable low freezes the counter.
	po, next, err := st.Step(state, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if po[0] {
		t.Error("carry with enable low")
	}
	if value(next) != value(state) {
		t.Error("counter advanced with enable low")
	}
}

func TestSimulateMatchesStepper(t *testing.T) {
	c := parseCounter(t)
	stimuli := make([][]bool, 10)
	for i := range stimuli {
		stimuli[i] = []bool{i%3 != 0}
	}
	outs, final, err := c.Simulate(c.Reset(), stimuli)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 10 {
		t.Fatalf("outs %d", len(outs))
	}
	// Re-run manually.
	st, _ := c.NewStepper()
	state := c.Reset()
	for i, pi := range stimuli {
		po, next, err := st.Step(state, pi)
		if err != nil {
			t.Fatal(err)
		}
		if po[0] != outs[i][0] {
			t.Fatalf("cycle %d mismatch", i)
		}
		state = next
	}
	for i := range state.FF {
		if state.FF[i] != final.FF[i] {
			t.Fatal("final state mismatch")
		}
	}
}

func TestUnrollMatchesSimulation(t *testing.T) {
	c := parseCounter(t)
	const cycles = 6
	u, err := c.Unroll(cycles)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Inputs) != c.NumFF+cycles*c.NumPI {
		t.Fatalf("unrolled inputs %d", len(u.Inputs))
	}
	if len(u.Outputs) != cycles*c.NumPO+c.NumFF {
		t.Fatalf("unrolled outputs %d", len(u.Outputs))
	}
	sim, err := netlist.NewSimulator(u)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		stimuli := make([][]bool, cycles)
		in := make([]bool, 0, c.NumFF+cycles)
		init := c.Reset()
		for i := range init.FF {
			init.FF[i] = trial&(1<<i) != 0
		}
		in = append(in, init.FF...)
		for t2 := range stimuli {
			stimuli[t2] = []bool{(trial+t2)%2 == 0}
			in = append(in, stimuli[t2]...)
		}
		want, wantFinal, err := c.Simulate(init, stimuli)
		if err != nil {
			t.Fatal(err)
		}
		out := sim.Eval(in)
		for t2 := 0; t2 < cycles; t2++ {
			if out[t2] != want[t2][0] {
				t.Fatalf("trial %d cycle %d PO mismatch", trial, t2)
			}
		}
		for i := 0; i < c.NumFF; i++ {
			if out[cycles+i] != wantFinal.FF[i] {
				t.Fatalf("trial %d final state bit %d mismatch", trial, i)
			}
		}
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	c := parseCounter(t)
	var buf bytes.Buffer
	if err := c.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromBench("counter", &buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if back.NumFF != 3 || back.NumPI != 1 {
		t.Fatalf("round trip geometry changed: %+v", back)
	}
	// Behaviour identical over a few cycles.
	stimuli := [][]bool{{true}, {true}, {false}, {true}}
	a, _, err := c.Simulate(c.Reset(), stimuli)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := back.Simulate(back.Reset(), stimuli)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("cycle %d differs after round trip", i)
		}
	}
}

func TestSequentialGPSMatchesCombinationalReference(t *testing.T) {
	// Build a 1-chip combinational GPS step and iterate it as a
	// sequential machine; the chip stream must match GPSCARef.
	nl, err := circuit.GPSCA(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: inputs = 20 state bits (no PIs), outputs = 1 chip + 20
	// next-state bits.
	c, err := New(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPI != 0 || c.NumPO != 1 {
		t.Fatalf("unexpected geometry %+v", c)
	}
	st, err := c.NewStepper()
	if err != nil {
		t.Fatal(err)
	}
	state := c.Reset()
	for i := range state.FF {
		state.FF[i] = true // all-ones epoch
	}
	var chips []bool
	for i := 0; i < 32; i++ {
		po, next, err := st.Step(state, nil)
		if err != nil {
			t.Fatal(err)
		}
		chips = append(chips, po[0])
		state = next
	}
	want, _, _ := circuit.GPSCARef(1, 32, 0x3FF, 0x3FF)
	for i := range want {
		if chips[i] != want[i] {
			t.Fatalf("chip %d = %v, want %v", i, chips[i], want[i])
		}
	}
}

func TestNewValidation(t *testing.T) {
	nl := netlist.New("bad")
	nl.AddInput("a")
	g := nl.AddGate("g", netlist.Not, 0)
	nl.MarkOutput(g)
	if _, err := New(nl, 5); err == nil {
		t.Error("FF count exceeding I/O accepted")
	}
}
