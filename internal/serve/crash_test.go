package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
)

// buildRild compiles the daemon binary once per test run.
func buildRild(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rild")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/rild")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rild: %v\n%s", err, out)
	}
	return bin
}

// startRild launches the daemon against state and waits for its
// listening line, returning the process and a client bound to the
// actual port.
func startRild(t *testing.T, bin, state string) (*exec.Cmd, *Client) {
	t.Helper()
	cmd := exec.Command(bin,
		"-state", state,
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-default-timeout", "10m",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := make(chan string, 1)
	go func() {
		defer close(addr)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "rild: listening on "); ok {
				addr <- rest
				return
			}
		}
	}()
	select {
	case a, ok := <-addr:
		if !ok {
			_ = cmd.Process.Kill()
			t.Fatal("rild exited before announcing its address")
		}
		return cmd, &Client{Base: "http://" + a}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("rild did not announce its address in 30s")
	}
	return nil, nil
}

// slowAttackSpec locks a quarter-scale c7552 with two 8x8 RIL blocks —
// the same ~5s target ci.sh's kill-and-resume smoke uses — so a
// SIGKILL lands mid-DIP-loop with progress already journaled.
func slowAttackSpec(t *testing.T) *JobSpec {
	t.Helper()
	prof, ok := circuit.ProfileByName("c7552")
	if !ok {
		t.Fatal("no c7552 profile")
	}
	orig, err := prof.Synthesize(0.25)
	if err != nil {
		t.Fatal(err)
	}
	size, err := core.ParseSize("8x8")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: size, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var bench strings.Builder
	if err := res.Locked.WriteBench(&bench); err != nil {
		t.Fatal(err)
	}
	var key strings.Builder
	for i, name := range res.KeyNames {
		bit := 0
		if res.Key[i] {
			bit = 1
		}
		fmt.Fprintf(&key, "%s=%d\n", name, bit)
	}
	return &JobSpec{
		Type:   TypeAttack,
		Attack: &AttackSpec{Bench: bench.String(), Key: key.String()},
	}
}

// metricValue extracts one metric's value from /metrics text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestDaemonCrashResume is the end-to-end crash-safety proof: a long
// attack is submitted over HTTP, the daemon is SIGKILLed mid-DIP-loop,
// a fresh daemon over the same state directory resumes the job from
// its journal, and the finished result shows journaled DIPs were
// replayed — with the restarted process's process-wide oracle counter
// (rild_oracle_queries_total) confirming the resumed run paid only for
// the DIPs the journal did not already hold.
func TestDaemonCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	bin := buildRild(t)
	state := t.TempDir()
	spec := slowAttackSpec(t)

	first, client := startRild(t, bin, state)
	defer func() { _ = first.Process.Kill() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	id, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the DIP loop has journaled real progress, then
	// SIGKILL — no drain, no flush, the hard crash.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v, err := client.Job(ctx, id)
		if err == nil && terminal(v.State) {
			t.Skipf("attack finished in %v before the kill could land; machine too fast for the crash window", v.Seconds)
		}
		if err == nil && v.Progress != nil && v.Progress.Iteration >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("attack never reached iteration 3")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = first.Wait()

	second, client2 := startRild(t, bin, state)
	defer func() { _ = second.Process.Kill() }()

	v, err := client2.WaitDone(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("resumed job: state=%s error=%q", v.State, v.Error)
	}
	var ar AttackResult
	if err := json.Unmarshal(v.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Status != "key-found" {
		t.Fatalf("resumed attack status %q: %+v", ar.Status, ar)
	}
	if ar.Replayed < 3 {
		t.Fatalf("resumed attack replayed %d DIPs, want >= 3 (journal ignored?)", ar.Replayed)
	}
	if ar.Replayed >= ar.Iterations {
		t.Logf("note: all %d DIPs replayed; the kill landed after the last DIP", ar.Iterations)
	}

	// Counter verification: the restarted process ran exactly this one
	// job, so its process-wide oracle counter must equal the job's
	// reported live queries — zero re-queries for journaled DIPs.
	metrics, err := client2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := metricValue(t, metrics, "rild_oracle_queries_total")
	if total != int64(ar.Queries) {
		t.Fatalf("daemon issued %d oracle queries but the job accounts for %d — the resume re-queried journaled DIPs",
			total, ar.Queries)
	}
	t.Logf("resume: %d iterations, %d replayed, %d live queries", ar.Iterations, ar.Replayed, ar.Queries)

	// Graceful exit of the second daemon must leave no temp litter.
	if err := second.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() {
		defer close(waitErr)
		waitErr <- second.Wait()
	}()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited nonzero after SIGINT drain: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not exit within a minute of SIGINT")
	}
	for _, sub := range []string{"specs", "ckpt"} {
		entries, err := os.ReadDir(filepath.Join(state, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Fatalf("drained daemon left temp file %s/%s", sub, e.Name())
			}
		}
	}
}
