package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/sat"
)

// JobView is the API representation of a job (GET /jobs/{id} and each
// element of GET /jobs).
type JobView struct {
	ID        string `json:"id"`
	Type      string `json:"type"`
	Tenant    string `json:"tenant,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	State     string `json:"state"`
	Submitted string `json:"submitted"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// Seconds is the job's execution wall clock; a cache hit reports
	// the original computation's, not ~0.
	Seconds  float64         `json:"seconds,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Progress *ProgressEvent  `json:"progress,omitempty"`
}

// view snapshots a job under its lock.
func (js *jobState) view() *JobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := &JobView{
		ID:        js.id,
		Type:      js.spec.Type,
		Tenant:    js.spec.Tenant,
		Priority:  js.spec.Priority,
		State:     js.state,
		Submitted: js.submitted.UTC().Format(time.RFC3339Nano),
		Seconds:   js.seconds,
		Cached:    js.cached,
		Progress:  js.progress,
	}
	if !js.started.IsZero() {
		v.Started = js.started.UTC().Format(time.RFC3339Nano)
	}
	if !js.finished.IsZero() {
		v.Finished = js.finished.UTC().Format(time.RFC3339Nano)
	}
	if js.outcome != nil {
		v.Error = js.outcome.Error
		v.Result = js.outcome.Result
	}
	return v
}

// Handler returns the daemon's HTTP surface:
//
//	POST /jobs              submit a JobSpec, returns {"id": ...}
//	GET  /jobs              list jobs (newest last)
//	GET  /jobs/{id}         one job's state and result
//	GET  /jobs/{id}/events  SSE progress stream until terminal
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /metrics           text metrics (Prometheus exposition style)
//	GET  /healthz           liveness + drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// maxSpecBytes bounds a submission body (benches are text; the
// largest ISCAS bench locked with generous parameters stays far
// under this).
const maxSpecBytes = 16 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad spec: %w", err))
		return
	}
	id, err := s.Submit(&spec)
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	views := make([]*JobView, 0, len(ids))
	for _, id := range ids {
		if js, ok := s.jobs[id]; ok {
			views = append(views, js.view())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, js.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		httpError(w, http.StatusConflict, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"state": "cancelling"})
	}
}

// sseFrame renders one Server-Sent-Events frame.
func sseFrame(event string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: %s\ndata: %s\n\n", event, data)
	return b.Bytes(), nil
}

// handleEvents streams job progress as SSE: an initial "state" frame,
// "progress" frames as the attack iterates, and a final "done" frame
// carrying the full job view, after which the stream ends. Slow
// consumers may miss intermediate progress frames (sends never block
// the job) but always receive the terminal frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(frame []byte) bool {
		if _, err := w.Write(frame); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if frame, err := sseFrame("state", js.view()); err != nil || !send(frame) {
		return
	}
	ch, unsubscribe := js.subscribe()
	defer unsubscribe()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-js.done:
			if frame, err := sseFrame("done", js.view()); err == nil {
				send(frame)
			}
			return
		case frame := <-ch:
			if !send(frame) {
				return
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.draining.Load(),
	})
}

// handleMetrics writes plain-text metrics in the Prometheus
// exposition format (hand-rolled; the repo takes no dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type metric struct {
		name, help string
		value      any
	}
	var cacheStats [6]int64
	cacheEnabled := 0
	if s.opt.Cache != nil {
		st := s.opt.Cache.Stats()
		cacheStats = [6]int64{st.Hits, st.Misses, st.Invalidations, st.Puts, st.PutErrors, st.Evictions}
		cacheEnabled = 1
	}
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	ms := []metric{
		{"rild_up", "daemon liveness", 1},
		{"rild_draining", "1 while the daemon refuses new jobs", draining},
		{"rild_uptime_seconds", "seconds since the daemon started", time.Since(s.started).Seconds()},
		{"rild_queue_depth", "jobs waiting for a worker", s.q.size()},
		{"rild_jobs_running", "jobs currently executing", s.running.Load()},
		{"rild_jobs_accepted_total", "jobs accepted since start", s.accepted.Load()},
		{"rild_jobs_done_total", "jobs finished successfully since start", s.completed.Load()},
		{"rild_jobs_failed_total", "jobs finished with an error since start", s.failed.Load()},
		{"rild_jobs_cancelled_total", "jobs cancelled since start", s.cancelled.Load()},
		{"rild_jobs_cache_hits_total", "jobs answered from the result cache", s.cacheHits.Load()},
		{"rild_oracle_queries_total", "process-wide simulated-oracle queries", attack.OracleQueriesTotal()},
		{"rild_sat_solve_calls_total", "process-wide SAT solver invocations", sat.SolveCallsTotal()},
		{"rild_solver_conflicts_total", "solver conflicts accumulated from finished jobs", s.conflicts.Load()},
		{"rild_cache_enabled", "1 when a result cache is attached", cacheEnabled},
		{"rild_cache_hits_total", "result-cache entry hits", cacheStats[0]},
		{"rild_cache_misses_total", "result-cache entry misses", cacheStats[1]},
		{"rild_cache_invalidations_total", "result-cache entries that failed authentication", cacheStats[2]},
		{"rild_cache_puts_total", "result-cache entries stored", cacheStats[3]},
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, metricType(m.name))
		switch v := m.value.(type) {
		case float64:
			fmt.Fprintf(w, "%s %g\n", m.name, v)
		default:
			fmt.Fprintf(w, "%s %d\n", m.name, v)
		}
	}
	// Per-tenant queue depth, sorted for deterministic output.
	depths := s.tenantDepths()
	tenants := make([]string, 0, len(depths))
	for t := range depths {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "# HELP rild_tenant_queue_depth queued jobs per tenant\n# TYPE rild_tenant_queue_depth gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "rild_tenant_queue_depth{tenant=%q} %d\n", t, depths[t])
	}
}

// metricType classifies a metric name for the TYPE line.
func metricType(name string) string {
	if len(name) > 6 && name[len(name)-6:] == "_total" {
		return "counter"
	}
	return "gauge"
}

// tenantDepths snapshots queued jobs per tenant.
func (s *Server) tenantDepths() map[string]int {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	out := map[string]int{}
	for _, b := range s.q.bands {
		for tenant, fifo := range b.tenants {
			if len(fifo) > 0 {
				out[tenant] += len(fifo)
			}
		}
	}
	return out
}
