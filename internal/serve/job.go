package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// Result payloads. These are what GET /jobs/{id} returns under
// "result" and what the checkpoint manifest and cache persist, so the
// fields are stable JSON.

// AttackResult is one attack target's outcome.
type AttackResult struct {
	// Status is the attack verdict: key-found, timeout (the paper's
	// ∞), or failed.
	Status string `json:"status"`
	// Key is the recovered key as a little-endian bit string (set when
	// Status is key-found).
	Key     string `json:"key,omitempty"`
	KeyBits int    `json:"key_bits"`
	// Iterations counts DIPs; Replayed of them came from the journal,
	// so this run queried the oracle for Iterations-Replayed of them.
	Iterations int `json:"iterations"`
	Replayed   int `json:"replayed,omitempty"`
	// Queries is this run's live oracle-query count (journal replay
	// and verification excluded).
	Queries   int       `json:"queries"`
	ElapsedMS int64     `json:"elapsed_ms"`
	Solver    sat.Stats `json:"solver"`
	// ErrorRate is the verified residual error of the recovered key
	// (only when the spec asked to Verify).
	ErrorRate float64 `json:"error_rate,omitempty"`
	Verified  bool    `json:"verified,omitempty"`
}

// LockResult is a locked netlist plus its key, both in the text
// formats cmd/locker emits.
type LockResult struct {
	Scheme  string `json:"scheme"`
	Bench   string `json:"bench"`
	KeyBits int    `json:"key_bits"`
	// Key holds one name=bit line per key input.
	Key          []string `json:"key"`
	LintWarnings int      `json:"lint_warnings"`
}

// LintResult reports a hygiene pass.
type LintResult struct {
	Errors      int                  `json:"errors"`
	Warnings    int                  `json:"warnings"`
	Diagnostics []netlint.Diagnostic `json:"diagnostics,omitempty"`
}

// SweepResult aggregates a sweep job's targets.
type SweepResult struct {
	Targets    []*AttackResult `json:"targets"`
	Iterations int             `json:"iterations"`
	Queries    int             `json:"queries"`
}

// attackTarget is a parsed AttackSpec ready to attack.
type attackTarget struct {
	locked *netlist.Netlist
	keyPos []int
	key    []bool
	oracle *attack.SimOracle
}

// parseAttackTarget turns the inline bench + key text into the locked
// netlist, key positions, correct key, and activated oracle — the
// in-memory equivalent of cmd/satattack's file loading.
func parseAttackTarget(name string, spec *AttackSpec) (*attackTarget, error) {
	locked, err := netlist.ParseBench(name, strings.NewReader(spec.Bench))
	if err != nil {
		return nil, err
	}
	prefix := spec.KeyPrefix
	if prefix == "" {
		prefix = "keyinput"
	}
	keyPos := locked.GateIDsByPrefix(prefix)
	if len(keyPos) == 0 {
		return nil, fmt.Errorf("no key inputs with prefix %q", prefix)
	}
	key, err := parseKeyText(spec.Key, locked, keyPos)
	if err != nil {
		return nil, err
	}
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return nil, err
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		return nil, err
	}
	return &attackTarget{locked: locked, keyPos: keyPos, key: key, oracle: oracle}, nil
}

// parseKeyText reads the cmd/locker key format (name=bit per line,
// '#' comments) into the key vector ordered by keyPos.
func parseKeyText(text string, locked *netlist.Netlist, keyPos []int) ([]bool, error) {
	byName := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Split(line, "=")
		if len(eq) != 2 {
			return nil, fmt.Errorf("bad key line %q", line)
		}
		byName[strings.TrimSpace(eq[0])] = strings.TrimSpace(eq[1]) == "1"
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	key := make([]bool, len(keyPos))
	for i, pos := range keyPos {
		name := locked.Gates[locked.Inputs[pos]].Name
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("key missing %q", name)
		}
		key[i] = v
	}
	return key, nil
}

// keyBitString renders a key little-endian as '0'/'1'.
func keyBitString(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		b[i] = '0'
		if v {
			b[i] = '1'
		}
	}
	return string(b)
}

// openResumableJournal opens (and, when present, loads) the DIP
// journal at path, degrading a corrupt file to a fresh start — the
// daemon mirrors cmd/satattack's resume semantics but always resumes
// when a journal exists, because a journal in the state directory can
// only mean a previous run of this same job.
func (s *Server) openResumableJournal(path string) (*attack.Journal, *attack.JournalData, error) {
	j, data, err := attack.OpenJournal(path)
	if err == nil {
		return j, data, nil
	}
	if !errors.Is(err, attack.ErrJournalCorrupt) {
		return nil, nil, err
	}
	s.logf("serve: %s: corrupt journal, starting fresh: %v", path, err)
	if err := os.Remove(path); err != nil {
		return nil, nil, err
	}
	j, _, err = attack.OpenJournal(path)
	return j, nil, err
}

// runAttackTarget runs one attack with journaled resume. journalKey
// names the target's private journal inside the checkpoint directory;
// publish (may be nil) receives per-DIP progress.
func (s *Server) runAttackTarget(ctx context.Context, journalKey string, target int,
	spec *AttackSpec, publish func(ProgressEvent)) (res *AttackResult, err error) {
	at, err := parseAttackTarget(journalKey, spec)
	if err != nil {
		return nil, err
	}
	out := &AttackResult{KeyBits: len(at.keyPos)}
	start := time.Now()

	var status attack.Status
	var recovered []bool
	if spec.AppSAT {
		opt := attack.DefaultAppSAT()
		opt.Timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
		opt.Context = ctx
		r, err := attack.AppSAT(at.locked, at.keyPos, at.oracle, opt)
		if err != nil {
			return nil, err
		}
		status, recovered, out.Iterations = r.Status, r.Key, r.DIPs
	} else {
		opts := attack.SATOptions{
			Timeout:   time.Duration(spec.TimeoutMS) * time.Millisecond,
			Context:   ctx,
			BVA:       spec.BVA,
			Portfolio: spec.Portfolio,
		}
		if publish != nil {
			opts.Progress = func(p attack.Progress) {
				publish(ProgressEvent{
					Target:    target,
					Iteration: p.Iteration,
					Queries:   at.oracle.Queries(),
					ElapsedMS: p.Elapsed.Milliseconds(),
					Solver:    p.Solver,
				})
			}
		}
		j, data, err := s.openResumableJournal(s.ckpt.JobFile(journalKey))
		if err != nil {
			return nil, err
		}
		// The journal fsyncs per record; a failed close is the last
		// chance to observe lost appended DIPs, so join it into err.
		defer func() { err = errors.Join(err, j.Close()) }()
		opts.Journal, opts.Resume = j, data
		r, err := attack.SATAttack(at.locked, at.keyPos, at.oracle, opts)
		if errors.Is(err, attack.ErrReplayDiverged) {
			// The journal belongs to a different circuit or attack
			// configuration (e.g. the spec changed); degrade to fresh.
			s.logf("serve: %s: journal does not match, starting fresh: %v", journalKey, err)
			if rerr := os.Remove(s.ckpt.JobFile(journalKey)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return nil, rerr
			}
			var j2 *attack.Journal
			j2, _, err = attack.OpenJournal(s.ckpt.JobFile(journalKey))
			if err != nil {
				return nil, err
			}
			defer func() { err = errors.Join(err, j2.Close()) }()
			opts.Journal, opts.Resume = j2, nil
			r, err = attack.SATAttack(at.locked, at.keyPos, at.oracle, opts)
		}
		if err != nil {
			return nil, err
		}
		status, recovered = r.Status, r.Key
		out.Iterations, out.Replayed, out.Solver = r.Iterations, r.Replayed, r.Solver
	}

	// A cancelled attack reports Timeout with a nil error; the daemon
	// must not persist that as the paper's ∞ verdict — the job is
	// interrupted, not finished, and its journal makes a re-run cheap.
	if status == attack.Timeout && ctx.Err() != nil {
		return nil, fmt.Errorf("attack interrupted: %w", context.Cause(ctx))
	}

	out.Status = status.String()
	out.Queries = at.oracle.Queries()
	out.ElapsedMS = time.Since(start).Milliseconds()
	if status == attack.KeyFound {
		out.Key = keyBitString(recovered)
		if spec.Verify {
			e, err := attack.VerifyKey(at.locked, at.keyPos, recovered, at.oracle, 16, 1)
			if err != nil {
				return nil, err
			}
			out.ErrorRate, out.Verified = e, true
		}
	}
	return out, nil
}

// runLock locks the spec's bench, gates the result on the netlint
// hygiene analyzers exactly as cmd/locker's emit path does, and
// returns the locked bench plus key lines.
func runLock(spec *LockSpec) (*LockResult, error) {
	orig, err := netlist.ParseBench("submitted", strings.NewReader(spec.Bench))
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	var (
		locked   *netlist.Netlist
		keyPos   []int
		key      []bool
		lintOpts netlint.Options
	)
	switch spec.Scheme {
	case "ril":
		size, err := core.ParseSize(spec.Size)
		if err != nil {
			return nil, err
		}
		res, err := core.Lock(orig, core.Options{
			Blocks: spec.Blocks, Size: size, Seed: seed, ScanEnable: spec.Scan,
		})
		if err != nil {
			return nil, err
		}
		locked, keyPos, key = res.Locked, res.KeyInputPos, res.Key
		lintOpts = netlint.Options{
			Key: keyByName(locked, keyPos, key),
			Scan: &netlint.ScanSpec{Chains: []netlint.ScanChainSpec{{
				Name:     "keychain",
				Width:    core.NewKeyChain(res).Len(),
				Cells:    res.KeyNames,
				KeyChain: true,
			}}},
		}
	default:
		var l *baselines.Locked
		switch spec.Scheme {
		case "lut":
			l, err = baselines.LUTLock(orig, spec.Blocks, seed)
		case "xor":
			l, err = baselines.XORLock(orig, spec.KeyBits, seed)
		case "sarlock":
			l, err = baselines.SARLock(orig, spec.KeyBits, seed)
		case "antisat":
			l, err = baselines.AntiSAT(orig, spec.KeyBits, seed)
		case "sfll":
			l, err = baselines.SFLLHD(orig, spec.KeyBits, spec.HD, seed)
		case "caslock":
			l, err = baselines.CASLock(orig, spec.KeyBits, seed)
		case "meso":
			l, err = baselines.MESOLock(orig, spec.Blocks, seed)
		default:
			return nil, fmt.Errorf("unknown scheme %q", spec.Scheme)
		}
		if err != nil {
			return nil, err
		}
		locked, keyPos, key = l.Netlist, l.KeyPos, l.Key
		lintOpts = netlint.Options{Key: keyByName(locked, keyPos, key)}
	}

	lint, err := netlint.Run(locked, lintOpts, netlint.Hygiene()...)
	if err != nil {
		return nil, err
	}
	if lint.HasErrors() {
		msgs := make([]string, 0, len(lint.Errors()))
		for _, d := range lint.Errors() {
			msgs = append(msgs, d.String())
		}
		return nil, fmt.Errorf("netlint gate: %s", strings.Join(msgs, "; "))
	}

	var bench strings.Builder
	if err := locked.WriteBench(&bench); err != nil {
		return nil, err
	}
	out := &LockResult{
		Scheme:       spec.Scheme,
		Bench:        bench.String(),
		KeyBits:      len(key),
		LintWarnings: lint.Count(netlint.Warn),
	}
	for i, pos := range keyPos {
		bit := 0
		if key[i] {
			bit = 1
		}
		out.Key = append(out.Key, fmt.Sprintf("%s=%d", locked.Gates[locked.Inputs[pos]].Name, bit))
	}
	return out, nil
}

// keyByName maps key input names to their correct values for the
// const-lut analyzer.
func keyByName(nl *netlist.Netlist, keyPos []int, key []bool) map[string]bool {
	m := make(map[string]bool, len(key))
	for i, pos := range keyPos {
		m[nl.Gates[nl.Inputs[pos]].Name] = key[i]
	}
	return m
}

// runLint runs the hygiene analyzers; findings are data, not job
// failure — a bench with errors still yields a successful lint job
// whose result reports them.
func runLint(spec *LintSpec) (*LintResult, error) {
	nl, err := netlist.ParseBench("submitted", strings.NewReader(spec.Bench))
	if err != nil {
		return nil, err
	}
	res, err := netlint.Run(nl, netlint.Options{KeyPrefix: spec.KeyPrefix}, netlint.Hygiene()...)
	if err != nil {
		return nil, err
	}
	return &LintResult{
		Errors:      res.Count(netlint.Error),
		Warnings:    res.Count(netlint.Warn),
		Diagnostics: res.Diagnostics,
	}, nil
}

// runSweep runs a sweep job's targets sequentially under the shared
// ctx. Target i journals under "<id>#i", so a restart replays finished
// targets' journals and resumes the interrupted one.
func (s *Server) runSweep(ctx context.Context, id string, spec *SweepSpec, publish func(ProgressEvent)) (*SweepResult, error) {
	out := &SweepResult{}
	for i := range spec.Targets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep interrupted at target %d: %w", i, context.Cause(ctx))
		}
		r, err := s.runAttackTarget(ctx, fmt.Sprintf("%s#%d", id, i), i, &spec.Targets[i], publish)
		if err != nil {
			return nil, fmt.Errorf("target %d: %w", i, err)
		}
		out.Targets = append(out.Targets, r)
		out.Iterations += r.Iterations
		out.Queries += r.Queries
	}
	return out, nil
}
