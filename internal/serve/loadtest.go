package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/netlist"
)

// Client is a minimal rild API client; cmd/rild's -load mode and the
// crash-safety tests drive the daemon through it.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8372"
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Submit posts a job spec and returns the assigned ID.
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("serve: submit: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("serve: submit: response carries no id")
	}
	return out.ID, nil
}

// Job fetches one job's view.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: job %s: %s: %s", id, resp.Status, bytes.TrimSpace(body))
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Metrics fetches the raw /metrics text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: metrics: %s", resp.Status)
	}
	return string(body), nil
}

// terminalStates are the states WaitDone stops on.
func terminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// WaitDone polls a job until it reaches a terminal state. Transport
// errors are retried (the daemon may be restarting — resumed jobs
// finish after it comes back), so only ctx expiry gives up.
func (c *Client) WaitDone(ctx context.Context, id string) (*JobView, error) {
	backoff := 10 * time.Millisecond
	for {
		v, err := c.Job(ctx, id)
		if err == nil && terminal(v.State) {
			return v, nil
		}
		if ctx.Err() != nil {
			if err == nil {
				err = fmt.Errorf("job %s still %s", id, v.State)
			}
			return nil, fmt.Errorf("serve: wait %s: %w (%v)", id, ctx.Err(), err)
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// c17Bench is ISCAS-85 c17 (6 NAND gates, public domain) inline, so
// the load generator needs no files on the daemon's host.
const c17Bench = `INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G16, G19)
G23 = NAND(G10, G16)
`

// LoadTarget is one pre-locked attack target for the load generator.
type LoadTarget struct {
	Bench string
	Key   string
}

// MakeLoadTargets locks c17 with XOR key gates under n distinct seeds,
// yielding n small attack targets (a c17-class SAT attack completes
// in milliseconds). keyBits 0 defaults to 5 (c17 has six gates; XOR
// key gates cannot outnumber them).
func MakeLoadTargets(n, keyBits int) ([]LoadTarget, error) {
	if keyBits <= 0 {
		keyBits = 5
	}
	orig, err := netlist.ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		return nil, err
	}
	targets := make([]LoadTarget, 0, n)
	for i := 0; i < n; i++ {
		l, err := baselines.XORLock(orig, keyBits, int64(i+1))
		if err != nil {
			return nil, err
		}
		var bench strings.Builder
		if err := l.Netlist.WriteBench(&bench); err != nil {
			return nil, err
		}
		var key strings.Builder
		for j, pos := range l.KeyPos {
			bit := 0
			if l.Key[j] {
				bit = 1
			}
			fmt.Fprintf(&key, "%s=%d\n", l.Netlist.Gates[l.Netlist.Inputs[pos]].Name, bit)
		}
		targets = append(targets, LoadTarget{Bench: bench.String(), Key: key.String()})
	}
	return targets, nil
}

// LoadOptions configures a load-test run.
type LoadOptions struct {
	Jobs        int // total jobs to submit
	Concurrency int // client goroutines (0 = 32)
	Tenants     int // distinct tenant names (0 = 4)
	Variants    int // distinct locked circuits (0 = 8)
	KeyBits     int // key bits per variant (0 = 5)
	// JobTimeout bounds each submitted job server-side (0 = 30s).
	JobTimeout time.Duration
	// NoCache forces every job to run live, making throughput numbers
	// honest even when the daemon has a cache attached.
	NoCache bool
}

// LoadReport summarizes a load-test run. The invariants the daemon
// must hold: Lost == 0 (every accepted job reached a terminal state
// and was never forgotten) and Duplicated == 0 (no two submissions
// shared an ID).
type LoadReport struct {
	Jobs       int     `json:"jobs"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	CacheHits  int     `json:"cache_hits"`
	Lost       int     `json:"lost"`
	Duplicated int     `json:"duplicated"`
	WallSecs   float64 `json:"wall_seconds"`
	JobsPerSec float64 `json:"jobs_per_second"`
	P50MS      int64   `json:"latency_p50_ms"`
	P95MS      int64   `json:"latency_p95_ms"`
	MaxMS      int64   `json:"latency_max_ms"`
}

func (r *LoadReport) String() string {
	return fmt.Sprintf("%d jobs in %.2fs (%.1f jobs/s): %d done, %d failed, %d lost, %d duplicated, %d cache hits; latency p50=%dms p95=%dms max=%dms",
		r.Jobs, r.WallSecs, r.JobsPerSec, r.Done, r.Failed, r.Lost, r.Duplicated, r.CacheHits, r.P50MS, r.P95MS, r.MaxMS)
}

// LoadTest floods the daemon at base with opt.Jobs small attack jobs
// from opt.Concurrency client goroutines spread across opt.Tenants
// tenants and opt.Variants distinct circuits, waits for every job to
// finish, and verifies none were lost or duplicated.
func LoadTest(ctx context.Context, base string, opt LoadOptions, logf func(string, ...any)) (*LoadReport, error) {
	if opt.Jobs <= 0 {
		opt.Jobs = 1000
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 32
	}
	if opt.Tenants <= 0 {
		opt.Tenants = 4
	}
	if opt.Variants <= 0 {
		opt.Variants = 8
	}
	if opt.JobTimeout <= 0 {
		opt.JobTimeout = 30 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	targets, err := MakeLoadTargets(opt.Variants, opt.KeyBits)
	if err != nil {
		return nil, err
	}
	client := &Client{Base: base}

	type outcome struct {
		id      string
		view    *JobView
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, opt.Jobs)
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := targets[i%len(targets)]
				spec := &JobSpec{
					Type:      TypeAttack,
					Tenant:    fmt.Sprintf("tenant-%d", i%opt.Tenants),
					TimeoutMS: opt.JobTimeout.Milliseconds(),
					NoCache:   opt.NoCache,
					Attack:    &AttackSpec{Bench: t.Bench, Key: t.Key},
				}
				t0 := time.Now()
				id, err := client.Submit(ctx, spec)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				v, err := client.WaitDone(ctx, id)
				outcomes[i] = outcome{id: id, view: v, latency: time.Since(t0), err: err}
			}
		}()
	}
	for i := 0; i < opt.Jobs; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return nil, ctx.Err()
		}
		if (i+1)%500 == 0 {
			logf("load: %d/%d submitted", i+1, opt.Jobs)
		}
	}
	close(next)
	wg.Wait()

	rep := &LoadReport{Jobs: opt.Jobs, WallSecs: time.Since(start).Seconds()}
	seen := map[string]bool{}
	var latencies []time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		if o.id != "" {
			if seen[o.id] {
				rep.Duplicated++
			}
			seen[o.id] = true
		}
		switch {
		case o.err != nil || o.view == nil:
			rep.Lost++
		case o.view.State == StateDone:
			rep.Done++
			if o.view.Cached {
				rep.CacheHits++
			}
			latencies = append(latencies, o.latency)
		default:
			rep.Failed++
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.P50MS = latencies[len(latencies)/2].Milliseconds()
		rep.P95MS = latencies[len(latencies)*95/100].Milliseconds()
		rep.MaxMS = latencies[len(latencies)-1].Milliseconds()
	}
	if rep.WallSecs > 0 {
		rep.JobsPerSec = float64(rep.Done+rep.Failed) / rep.WallSecs
	}
	return rep, nil
}
