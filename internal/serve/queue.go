package serve

import (
	"context"
	"sort"
	"sync"
)

// queue is the daemon's scheduler: jobs are grouped into priority
// bands (higher priority dispatches first); within a band, tenants are
// served round-robin and each tenant's jobs dispatch in arrival order.
// A single hot tenant therefore cannot starve the others — with T
// active tenants in the top band, each gets every T-th dispatch slot —
// while an idle daemon still runs a lone tenant's backlog back to
// back.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	bands  map[int]*band // by priority
	depth  int
	closed bool
}

// band holds one priority level's per-tenant FIFOs plus the rotation
// cursor.
type band struct {
	tenants map[string][]*jobState
	ring    []string // tenant rotation order (arrival order)
	next    int      // ring index of the tenant to serve next
	depth   int
}

func newQueue() *queue {
	q := &queue{bands: map[int]*band{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job under its spec's priority and tenant. Returns
// false if the queue is closed (draining daemon).
func (q *queue) push(js *jobState) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	p := clampPriority(js.spec.Priority)
	b := q.bands[p]
	if b == nil {
		b = &band{tenants: map[string][]*jobState{}}
		q.bands[p] = b
	}
	tenant := js.spec.Tenant
	if _, known := b.tenants[tenant]; !known {
		b.ring = append(b.ring, tenant)
	}
	b.tenants[tenant] = append(b.tenants[tenant], js)
	b.depth++
	q.depth++
	q.cond.Signal()
	return true
}

// popLocked removes and returns the next job by priority then tenant
// rotation, or nil when empty. Caller holds q.mu.
func (q *queue) popLocked() *jobState {
	if q.depth == 0 {
		return nil
	}
	// Highest non-empty band first. Bands are few (17 at most), so a
	// sorted scan beats maintaining a heap.
	prios := make([]int, 0, len(q.bands))
	for p, b := range q.bands {
		if b.depth > 0 {
			prios = append(prios, p)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	for _, p := range prios {
		b := q.bands[p]
		for i := 0; i < len(b.ring); i++ {
			idx := (b.next + i) % len(b.ring)
			tenant := b.ring[idx]
			fifo := b.tenants[tenant]
			if len(fifo) == 0 {
				continue
			}
			js := fifo[0]
			b.tenants[tenant] = fifo[1:]
			b.depth--
			q.depth--
			b.next = (idx + 1) % len(b.ring)
			return js
		}
	}
	return nil
}

// popWait blocks until a job is available, the queue closes, or ctx is
// done. The caller must arrange for close(), or a context.AfterFunc
// calling wake(), to unblock waiters on cancellation.
func (q *queue) popWait(ctx context.Context) (*jobState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed || ctx.Err() != nil {
			return nil, false
		}
		if js := q.popLocked(); js != nil {
			return js, true
		}
		q.cond.Wait()
	}
}

// remove deletes a queued job by ID (user cancellation). Returns the
// job if it was still queued.
func (q *queue) remove(id string) *jobState {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, b := range q.bands {
		for tenant, fifo := range b.tenants {
			for i, js := range fifo {
				if js.id != id {
					continue
				}
				b.tenants[tenant] = append(fifo[:i:i], fifo[i+1:]...)
				b.depth--
				q.depth--
				return js
			}
		}
	}
	return nil
}

// size reports the queued-job count.
func (q *queue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// close stops dispatch: popWait returns immediately and push refuses.
// Already-queued jobs stay in place — their persisted specs re-enqueue
// them on the next daemon start.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// wake unblocks all waiters so they can observe context cancellation.
func (q *queue) wake() { q.cond.Broadcast() }
