package serve

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// qjob builds a queued jobState stub.
func qjob(id, tenant string, prio int) *jobState {
	return &jobState{
		id:   id,
		spec: &JobSpec{Tenant: tenant, Priority: prio},
		subs: map[int]chan []byte{},
		done: make(chan struct{}),
	}
}

func popIDs(t *testing.T, q *queue, n int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stop := context.AfterFunc(ctx, q.wake)
	defer stop()
	var out []string
	for i := 0; i < n; i++ {
		js, ok := q.popWait(ctx)
		if !ok {
			t.Fatalf("queue closed after %d pops, want %d", i, n)
		}
		out = append(out, js.id)
	}
	return out
}

// TestQueueTenantFairness: within one priority band tenants rotate
// round-robin, so a hot tenant's backlog cannot starve the others.
func TestQueueTenantFairness(t *testing.T) {
	q := newQueue()
	// Tenant a floods first; b and c each submit one job afterwards.
	for i := 0; i < 4; i++ {
		q.push(qjob(fmt.Sprintf("a%d", i), "a", 0))
	}
	q.push(qjob("b0", "b", 0))
	q.push(qjob("c0", "c", 0))

	got := popIDs(t, q, 6)
	want := []string{"a0", "b0", "c0", "a1", "a2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestQueuePriorityBands: higher priority always dispatches first,
// and priorities clamp into [MinPriority, MaxPriority].
func TestQueuePriorityBands(t *testing.T) {
	q := newQueue()
	q.push(qjob("low", "x", -1))
	q.push(qjob("mid", "x", 0))
	q.push(qjob("high", "x", 5))
	q.push(qjob("huge", "y", 999)) // clamps to MaxPriority
	got := popIDs(t, q, 4)
	want := []string{"huge", "high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestQueueRemove: a removed (cancelled) job never dispatches; depth
// accounting follows.
func TestQueueRemove(t *testing.T) {
	q := newQueue()
	q.push(qjob("keep", "a", 0))
	q.push(qjob("drop", "a", 0))
	if q.remove("drop") == nil {
		t.Fatal("remove failed to find queued job")
	}
	if q.remove("drop") != nil {
		t.Fatal("second remove found a ghost")
	}
	if q.size() != 1 {
		t.Fatalf("size = %d, want 1", q.size())
	}
	if got := popIDs(t, q, 1); got[0] != "keep" {
		t.Fatalf("popped %q, want keep", got[0])
	}
}

// TestQueueCloseUnblocks: close wakes a blocked popWait with ok=false
// and push refuses afterwards; queued jobs stay put for the next
// daemon start.
func TestQueueCloseUnblocks(t *testing.T) {
	q := newQueue()
	unblocked := make(chan bool, 1)
	go func() {
		defer close(unblocked)
		_, ok := q.popWait(context.Background())
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("popWait returned a job from an empty closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not unblock popWait")
	}
	if q.push(qjob("late", "a", 0)) {
		t.Fatal("push succeeded on a closed queue")
	}
	q.push(qjob("x", "a", 0)) // refused, but must not panic
}

// TestQueueContextCancelUnblocks: a cancelled context (wired through
// wake, as the server's AfterFunc does) unblocks waiters.
func TestQueueContextCancelUnblocks(t *testing.T) {
	q := newQueue()
	ctx, cancel := context.WithCancel(context.Background())
	stop := context.AfterFunc(ctx, q.wake)
	defer stop()
	unblocked := make(chan bool, 1)
	go func() {
		defer close(unblocked)
		_, ok := q.popWait(ctx)
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("popWait returned a job after context cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock popWait")
	}
}
