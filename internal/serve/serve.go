package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/sat"
	"repro/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// StateDir is the daemon's persistent root: StateDir/specs holds
	// one durably-written spec file per accepted job, StateDir/ckpt
	// holds the sweep manifest plus per-attack DIP journals. Required.
	StateDir string
	// Workers is the job-runner pool size (0 = all CPUs, as
	// sweep.Runner).
	Workers int
	// Cache, when non-nil, serves repeat submissions of byte-identical
	// specs without running them (and preserves their original
	// wall-clock seconds).
	Cache *cache.Cache
	// DefaultTimeout bounds jobs whose spec sets no timeout (0 = no
	// deadline).
	DefaultTimeout time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// jobOutcome is the terminal envelope persisted for every finished
// job: either a result payload or a failure message. Recording genuine
// failures as "done" manifest entries (with the error inside the
// envelope) is deliberate — a job that failed on its merits must not
// re-run on every daemon restart. Interrupted jobs are recorded
// "failed" instead, which the manifest treats as resumable.
type jobOutcome struct {
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Job states reported by the API.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted" // drain caught it mid-run; resumes next start
)

// jobState is one job's live record.
type jobState struct {
	id        string
	spec      *JobSpec
	submitted time.Time

	mu        sync.Mutex
	state     string
	started   time.Time
	finished  time.Time
	seconds   float64
	cached    bool
	outcome   *jobOutcome
	progress  *ProgressEvent
	cancel    context.CancelFunc
	cancelled bool // user asked; distinguishes cancel from drain
	subs      map[int]chan []byte
	nextSub   int
	done      chan struct{} // closed on any terminal (or interrupted) transition
}

// ProgressEvent is one SSE progress frame: the attack's DIP iteration,
// live oracle queries, and cumulative solver counters.
type ProgressEvent struct {
	// Target indexes sweep-job targets; 0 for single attacks.
	Target    int       `json:"target"`
	Iteration int       `json:"iteration"`
	Queries   int       `json:"queries"`
	ElapsedMS int64     `json:"elapsed_ms"`
	Solver    sat.Stats `json:"solver"`
}

// persistedJob is the on-disk spec file: everything needed to re-queue
// the job after a restart.
type persistedJob struct {
	ID        string   `json:"id"`
	Submitted int64    `json:"submitted_unix_ms"`
	Spec      *JobSpec `json:"spec"`
}

// Server is the rild daemon core, independent of its HTTP transport
// (http.go wires the handlers, cmd/rild the process).
type Server struct {
	opt    Options
	runner *sweep.Runner
	ckpt   *sweep.Checkpoint
	q      *queue

	mu    sync.Mutex
	jobs  map[string]*jobState
	order []string // submission order for listing

	runCtx   context.Context
	stopRun  context.CancelFunc
	unhook   func() bool // detaches the queue-wake AfterFunc
	wg       sync.WaitGroup
	draining atomic.Bool
	started  time.Time

	running   atomic.Int64 // jobs currently executing
	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	cacheHits atomic.Int64
	conflicts atomic.Int64 // solver conflicts accumulated from finished jobs
}

// New opens (or creates) the state directory, loads the checkpoint
// manifest, re-admits every persisted job — finished ones as terminal
// records, unfinished ones back onto the queue — and returns a Server
// ready to Start.
func New(opt Options) (*Server, error) {
	if opt.StateDir == "" {
		return nil, fmt.Errorf("serve: StateDir is required")
	}
	if err := os.MkdirAll(filepath.Join(opt.StateDir, "specs"), 0o755); err != nil {
		return nil, err
	}
	ckpt, err := sweep.ResumeCheckpoint(filepath.Join(opt.StateDir, "ckpt"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		runner:  &sweep.Runner{Workers: opt.Workers},
		ckpt:    ckpt,
		q:       newQueue(),
		jobs:    map[string]*jobState{},
		started: time.Now(),
	}
	s.runCtx, s.stopRun = context.WithCancel(context.Background())
	s.unhook = context.AfterFunc(s.runCtx, s.q.wake)
	if ckpt.Degraded() {
		s.logf("serve: checkpoint manifest corrupt; unfinished jobs restart from their journals")
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// recover loads every persisted spec, replays terminal outcomes from
// the manifest, and re-queues the rest in original submission order.
func (s *Server) recover() error {
	dir := filepath.Join(s.opt.StateDir, "specs")
	names, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var loaded []*jobState
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return err
		}
		var pj persistedJob
		if err := json.Unmarshal(raw, &pj); err != nil || pj.ID == "" || pj.Spec == nil {
			// A torn spec file means the submission never got its HTTP
			// response (the durable write happens first); drop it.
			s.logf("serve: dropping unreadable spec %s: %v", de.Name(), err)
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				return err
			}
			continue
		}
		if err := pj.Spec.Validate(); err != nil {
			s.logf("serve: dropping invalid persisted spec %s: %v", pj.ID, err)
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				return err
			}
			continue
		}
		js := &jobState{
			id:        pj.ID,
			spec:      pj.Spec,
			submitted: time.UnixMilli(pj.Submitted),
			state:     StateQueued,
			subs:      map[int]chan []byte{},
			done:      make(chan struct{}),
		}
		if e, ok := s.ckpt.Completed(pj.ID); ok {
			var out jobOutcome
			if len(e.Value) > 0 {
				if err := json.Unmarshal(e.Value, &out); err != nil {
					out = jobOutcome{Error: fmt.Sprintf("unreadable recorded outcome: %v", err)}
				}
			}
			js.outcome = &out
			js.seconds = e.Seconds
			js.state = StateDone
			if out.Error != "" {
				js.state = StateFailed
			}
			close(js.done)
		}
		loaded = append(loaded, js)
	}
	sort.Slice(loaded, func(i, j int) bool {
		if !loaded[i].submitted.Equal(loaded[j].submitted) {
			return loaded[i].submitted.Before(loaded[j].submitted)
		}
		return loaded[i].id < loaded[j].id
	})
	requeued := 0
	for _, js := range loaded {
		s.jobs[js.id] = js
		s.order = append(s.order, js.id)
		if js.state == StateQueued {
			s.q.push(js)
			requeued++
		}
	}
	if len(loaded) > 0 {
		s.logf("serve: recovered %d jobs (%d re-queued)", len(loaded), requeued)
	}
	return nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	n := s.runner.Workers
	if n <= 0 {
		n = defaultWorkers()
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// defaultWorkers sizes the pool when Options.Workers is 0.
func defaultWorkers() int { return runtime.NumCPU() }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		js, ok := s.q.popWait(s.runCtx)
		if !ok {
			return
		}
		s.runJob(js)
	}
}

// newID mints a crash-unique job ID.
func newID() (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// Submit validates, persists and enqueues a job, returning its ID.
// The spec file is durably on disk before Submit returns — an accepted
// job survives any later crash — and a draining server refuses.
func (s *Server) Submit(spec *JobSpec) (string, error) {
	if s.draining.Load() {
		return "", ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return "", err
	}
	id, err := newID()
	if err != nil {
		return "", err
	}
	js := &jobState{
		id:        id,
		spec:      spec,
		submitted: time.Now(),
		state:     StateQueued,
		subs:      map[int]chan []byte{},
		done:      make(chan struct{}),
	}
	raw, err := json.MarshalIndent(persistedJob{
		ID: id, Submitted: js.submitted.UnixMilli(), Spec: spec,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	if err := writeFileDurable(s.specPath(id), raw); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.jobs[id] = js
	s.order = append(s.order, id)
	s.mu.Unlock()
	if !s.q.push(js) {
		// Drain began between the check and the push; withdraw the job
		// completely so the rejected submission leaves no trace.
		s.mu.Lock()
		delete(s.jobs, id)
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if err := os.Remove(s.specPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("serve: withdraw %s: %v", id, err)
		}
		return "", ErrDraining
	}
	s.accepted.Add(1)
	return id, nil
}

// ErrDraining rejects submissions to a draining server.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// ErrUnknownJob reports a job ID the server has no record of.
var ErrUnknownJob = errors.New("serve: unknown job")

func (s *Server) specPath(id string) string {
	return filepath.Join(s.opt.StateDir, "specs", id+".json")
}

// job looks up a job by ID.
func (s *Server) job(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// Cancel stops a queued or running job. Queued jobs are removed before
// they ever start; running jobs get their context cancelled and are
// recorded cancelled when the runner returns.
func (s *Server) Cancel(id string) error {
	js, ok := s.job(id)
	if !ok {
		return ErrUnknownJob
	}
	if q := s.q.remove(id); q != nil {
		js.mu.Lock()
		js.state = StateCancelled
		js.cancelled = true
		js.finished = time.Now()
		done := js.done
		js.mu.Unlock()
		s.cancelled.Add(1)
		if err := os.Remove(s.specPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("serve: cancel %s: %v", id, err)
		}
		close(done)
		return nil
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	switch js.state {
	case StateRunning:
		js.cancelled = true
		if js.cancel != nil {
			js.cancel()
		}
		return nil
	case StateQueued:
		// Raced with a worker between remove and dispatch; treat as
		// running-any-moment and let finish() observe the flag.
		js.cancelled = true
		return nil
	}
	return fmt.Errorf("serve: job %s is %s: %w", id, js.state, ErrTerminal)
}

// ErrTerminal reports a cancel on an already-finished job.
var ErrTerminal = errors.New("already finished")

// cacheKey derives the job's cache key from its canonicalized spec.
// Only the payload-defining fields participate: tenant, priority and
// timeouts are scheduling concerns, so the same circuit submitted by
// two tenants shares one entry.
func (s *Server) cacheKey(spec *JobSpec) (cache.Key, bool) {
	if s.opt.Cache == nil || spec.NoCache {
		return cache.Key{}, false
	}
	payload := struct {
		Type   string      `json:"type"`
		Attack *AttackSpec `json:"attack,omitempty"`
		Lock   *LockSpec   `json:"lock,omitempty"`
		Lint   *LintSpec   `json:"lint,omitempty"`
		Sweep  *SweepSpec  `json:"sweep,omitempty"`
	}{spec.Type, spec.Attack, spec.Lock, spec.Lint, spec.Sweep}
	k, err := cache.NewKey("serve/job").Options("spec", payload).Key()
	if err != nil {
		return cache.Key{}, false
	}
	return k, true
}

// runJob executes one dequeued job end to end: cache probe, live run
// via the sweep runner (deadline + panic isolation), then terminal
// accounting through finish.
func (s *Server) runJob(js *jobState) {
	s.running.Add(1)
	defer s.running.Add(-1)

	js.mu.Lock()
	if js.cancelled {
		// Cancelled after dispatch but before we got here.
		js.state = StateCancelled
		js.finished = time.Now()
		done := js.done
		js.mu.Unlock()
		s.cancelled.Add(1)
		if err := os.Remove(s.specPath(js.id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("serve: cancel %s: %v", js.id, err)
		}
		close(done)
		return
	}
	js.state = StateRunning
	js.started = time.Now()
	js.mu.Unlock()
	s.publish(js, "running", nil)

	if k, ok := s.cacheKey(js.spec); ok {
		if raw, seconds, hit := s.opt.Cache.GetTimed(k); hit {
			var out jobOutcome
			if err := json.Unmarshal(raw, &out); err == nil {
				s.cacheHits.Add(1)
				// Fold the hit into the manifest so restarts don't
				// depend on the cache still holding the entry.
				_ = s.ckpt.Record(sweep.Result{Name: js.id, Seconds: seconds, Value: &out})
				s.settle(js, &out, seconds, true)
				return
			}
		}
	}

	jctx, cancel := context.WithCancel(s.runCtx)
	js.mu.Lock()
	js.cancel = cancel
	js.mu.Unlock()
	res := s.runner.RunOne(jctx, sweep.Job{
		Name:    js.id,
		Seed:    1,
		Timeout: js.spec.jobTimeout(s.opt.DefaultTimeout),
		Run: func(ctx context.Context, _ int64) (any, error) {
			return s.execute(ctx, js)
		},
	})
	cancel()
	s.finish(js, res)
}

// execute dispatches to the per-type runner.
func (s *Server) execute(ctx context.Context, js *jobState) (any, error) {
	publish := func(p ProgressEvent) {
		q := p
		s.publish(js, "progress", &q)
	}
	switch js.spec.Type {
	case TypeAttack:
		return s.runAttackTarget(ctx, js.id, 0, js.spec.Attack, publish)
	case TypeLock:
		return runLock(js.spec.Lock)
	case TypeLint:
		return runLint(js.spec.Lint)
	case TypeSweep:
		return s.runSweep(ctx, js.id, js.spec.Sweep, publish)
	}
	return nil, fmt.Errorf("serve: unknown job type %q", js.spec.Type)
}

// finish turns a runner result into a terminal record. The cases, in
// order: user cancellation; drain/shutdown interruption (recorded
// "failed" in the manifest so the job re-runs — resuming its journal —
// on the next start); genuine failure (recorded as a done-with-error
// envelope so it does NOT retry forever); success.
func (s *Server) finish(js *jobState, res sweep.Result) {
	js.mu.Lock()
	userCancelled := js.cancelled
	js.cancel = nil
	js.mu.Unlock()

	switch {
	case userCancelled:
		js.mu.Lock()
		js.state = StateCancelled
		js.finished = time.Now()
		done := js.done
		js.mu.Unlock()
		s.cancelled.Add(1)
		if err := os.Remove(s.specPath(js.id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("serve: cancel %s: %v", js.id, err)
		}
		close(done)

	case res.Err != nil && errors.Is(res.Err, context.Canceled):
		// Drain or shutdown. Keep the spec, record "failed" (the
		// resumable manifest state); the journal already holds every
		// DIP this run paid for.
		_ = s.ckpt.Record(res)
		js.mu.Lock()
		js.state = StateInterrupted
		js.finished = time.Now()
		done := js.done
		js.mu.Unlock()
		close(done)

	case res.Err != nil:
		out := &jobOutcome{Error: res.Err.Error()}
		_ = s.ckpt.Record(sweep.Result{Name: js.id, Seconds: res.Seconds, Value: out})
		s.failed.Add(1)
		s.settle(js, out, res.Seconds, false)

	default:
		raw, err := json.Marshal(res.Value)
		if err != nil {
			out := &jobOutcome{Error: fmt.Sprintf("unserializable result: %v", err)}
			_ = s.ckpt.Record(sweep.Result{Name: js.id, Seconds: res.Seconds, Value: out})
			s.failed.Add(1)
			s.settle(js, out, res.Seconds, false)
			return
		}
		out := &jobOutcome{Result: raw}
		_ = s.ckpt.Record(sweep.Result{Name: js.id, Seconds: res.Seconds, Value: out})
		s.accumulateSolver(res.Value)
		if k, ok := s.cacheKey(js.spec); ok {
			if env, err := json.Marshal(out); err == nil {
				_ = s.opt.Cache.PutTimed(k, env, res.Seconds)
			}
		}
		s.settle(js, out, res.Seconds, false)
	}
}

// settle records a terminal done/failed state and notifies watchers.
func (s *Server) settle(js *jobState, out *jobOutcome, seconds float64, cached bool) {
	js.mu.Lock()
	js.state = StateDone
	if out.Error != "" {
		js.state = StateFailed
	}
	js.outcome = out
	js.seconds = seconds
	js.cached = cached
	js.finished = time.Now()
	done := js.done
	js.mu.Unlock()
	if out.Error == "" {
		s.completed.Add(1)
	}
	close(done)
}

// accumulateSolver feeds finished-job solver counters into /metrics.
func (s *Server) accumulateSolver(v any) {
	switch r := v.(type) {
	case *AttackResult:
		s.conflicts.Add(r.Solver.Conflicts)
	case *SweepResult:
		for _, t := range r.Targets {
			s.conflicts.Add(t.Solver.Conflicts)
		}
	}
}

// Drain stops the daemon gracefully: refuse new submissions, stop
// dispatching queued jobs (their specs keep them for the next start),
// give in-flight jobs the grace period to finish on their own, then
// cancel the rest — every cancelled attack's journal already holds its
// paid-for DIPs — and finally run cache GC so the next start finds a
// trimmed, consistent cache.
func (s *Server) Drain(grace time.Duration) {
	if s.draining.Swap(true) {
		return
	}
	s.q.close()
	workers := make(chan struct{})
	go func() {
		defer close(workers)
		s.wg.Wait()
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		select {
		case <-workers:
			t.Stop()
		case <-t.C:
			s.logf("serve: drain grace expired; interrupting %d running jobs", s.running.Load())
		}
	}
	s.stopRun()
	<-workers
	s.unhook()
	if s.opt.Cache != nil {
		if n, err := s.opt.Cache.GC(); err != nil {
			s.logf("serve: cache gc: %v", err)
		} else if n > 0 {
			s.logf("serve: cache gc evicted %d entries", n)
		}
		st := s.opt.Cache.Stats()
		s.logf("serve: cache: %d hits, %d misses, %d puts", st.Hits, st.Misses, st.Puts)
	}
	s.logf("serve: drained: %d jobs still queued for next start", s.q.size())
}

// publish updates the job's latest progress and fans an SSE frame out
// to subscribers. Sends never block: a slow consumer misses
// intermediate frames but always gets the terminal one (the SSE
// handler re-reads the final state on done).
func (s *Server) publish(js *jobState, event string, p *ProgressEvent) {
	js.mu.Lock()
	if p != nil {
		js.progress = p
	}
	if len(js.subs) == 0 {
		js.mu.Unlock()
		return
	}
	var payload any = p
	if p == nil {
		payload = struct {
			State string `json:"state"`
		}{js.state}
	}
	frame, err := sseFrame(event, payload)
	if err != nil {
		js.mu.Unlock()
		return
	}
	for _, ch := range js.subs {
		select {
		case ch <- frame:
		default:
		}
	}
	js.mu.Unlock()
}

// subscribe registers an SSE consumer; the returned cancel must be
// called when the consumer leaves.
func (js *jobState) subscribe() (<-chan []byte, func()) {
	js.mu.Lock()
	defer js.mu.Unlock()
	id := js.nextSub
	js.nextSub++
	ch := make(chan []byte, 16)
	js.subs[id] = ch
	return ch, func() {
		js.mu.Lock()
		defer js.mu.Unlock()
		delete(js.subs, id)
	}
}

// writeFileDurable writes path atomically and durably: temp file in
// the same directory, fsync, rename, directory fsync — the same
// discipline the checkpoint manifest uses.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".spec-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return sweep.SyncDir(dir)
}
