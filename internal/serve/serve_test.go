package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
)

// startServer spins up a Server over httptest and returns it with a
// client; everything shuts down with the test.
func startServer(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	if opt.StateDir == "" {
		opt.StateDir = t.TempDir()
	}
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain(2 * time.Second)
		hs.Close()
	})
	return s, &Client{Base: hs.URL}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestLockThenAttack drives the natural pipeline over HTTP: lock c17,
// then attack the locked result, recovering a correct key.
func TestLockThenAttack(t *testing.T) {
	_, client := startServer(t, Options{Workers: 2})
	ctx := testCtx(t)

	lockID, err := client.Submit(ctx, &JobSpec{
		Type: TypeLock,
		Lock: &LockSpec{Bench: c17Bench, Scheme: "xor", KeyBits: 4, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	lv, err := client.WaitDone(ctx, lockID)
	if err != nil {
		t.Fatal(err)
	}
	if lv.State != StateDone || lv.Error != "" {
		t.Fatalf("lock job: state=%s error=%q", lv.State, lv.Error)
	}
	var lock LockResult
	if err := json.Unmarshal(lv.Result, &lock); err != nil {
		t.Fatal(err)
	}
	if lock.KeyBits != 4 || len(lock.Key) != 4 || lock.Bench == "" {
		t.Fatalf("lock result: %d key bits, %d key lines", lock.KeyBits, len(lock.Key))
	}

	attackID, err := client.Submit(ctx, &JobSpec{
		Type: TypeAttack,
		Attack: &AttackSpec{
			Bench:  lock.Bench,
			Key:    strings.Join(lock.Key, "\n"),
			Verify: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	av, err := client.WaitDone(ctx, attackID)
	if err != nil {
		t.Fatal(err)
	}
	if av.State != StateDone {
		t.Fatalf("attack job: state=%s error=%q", av.State, av.Error)
	}
	var ar AttackResult
	if err := json.Unmarshal(av.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Status != "key-found" || ar.KeyBits != 4 || len(ar.Key) != 4 {
		t.Fatalf("attack result: %+v", ar)
	}
	if !ar.Verified || ar.ErrorRate != 0 {
		t.Fatalf("recovered key failed verification: %+v", ar)
	}
	if av.Seconds <= 0 {
		t.Fatalf("attack Seconds = %v, want > 0", av.Seconds)
	}
}

// TestLintJob: findings are data; a clean bench lints clean.
func TestLintJob(t *testing.T) {
	_, client := startServer(t, Options{Workers: 1})
	ctx := testCtx(t)
	id, err := client.Submit(ctx, &JobSpec{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := client.WaitDone(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("lint job: state=%s error=%q", v.State, v.Error)
	}
	var lr LintResult
	if err := json.Unmarshal(v.Result, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Errors != 0 {
		t.Fatalf("c17 lints with %d errors: %+v", lr.Errors, lr.Diagnostics)
	}
}

// TestSubmitValidation: malformed specs are rejected before anything
// persists.
func TestSubmitValidation(t *testing.T) {
	s, client := startServer(t, Options{Workers: 1})
	ctx := testCtx(t)
	bad := []*JobSpec{
		{Type: "mystery"},
		{Type: TypeAttack}, // no sub-spec
		{Type: TypeAttack, Attack: &AttackSpec{Bench: c17Bench}},              // no key
		{Type: TypeLock, Lock: &LockSpec{Bench: c17Bench, Scheme: "magic"}},   // bad scheme
		{Type: TypeSweep, Sweep: &SweepSpec{}},                                // no targets
		{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}, TimeoutMS: -5000},  // negative deadline
		{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}, Lock: &LockSpec{}}, // two sub-specs
	}
	for i, spec := range bad {
		if id, err := client.Submit(ctx, spec); err == nil {
			t.Fatalf("bad spec %d accepted as %s", i, id)
		}
	}
	// Nothing leaked into the state dir or the queue.
	specs, err := os.ReadDir(filepath.Join(s.opt.StateDir, "specs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 || s.q.size() != 0 {
		t.Fatalf("rejected specs left %d files, queue depth %d", len(specs), s.q.size())
	}
}

// TestCancelQueuedJob: with no workers running, a submitted job stays
// queued; cancelling removes it completely (spec file included) so a
// restart cannot resurrect it.
func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): the job cannot be dispatched.
	id, err := s.Submit(&JobSpec{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	js, ok := s.job(id)
	if !ok {
		t.Fatal("cancelled job vanished from the index")
	}
	if got := js.view().State; got != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got)
	}
	if err := s.Cancel(id); err == nil {
		t.Fatal("second cancel succeeded on a terminal job")
	}
	if _, err := os.Stat(filepath.Join(dir, "specs", id+".json")); !os.IsNotExist(err) {
		t.Fatalf("cancelled job's spec file still present (err=%v)", err)
	}
	s.Drain(0)
}

// TestRestartRequeuesAndCompletes: jobs accepted but never run (the
// first daemon had no workers) survive a restart and complete under
// the second daemon, in the original submission order.
func TestRestartRequeuesAndCompletes(t *testing.T) {
	dir := t.TempDir()
	first, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := first.Submit(&JobSpec{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	first.Drain(0) // no workers ever started; jobs remain queued

	second, client := startServer(t, Options{StateDir: dir, Workers: 2})
	if second.q.size() != 0 && second.q.size() != 3 {
		t.Logf("note: %d jobs still queued at check time", second.q.size())
	}
	ctx := testCtx(t)
	for _, id := range ids {
		v, err := client.WaitDone(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("job %s: state=%s error=%q", id, v.State, v.Error)
		}
	}
}

// TestRestartKeepsTerminalOutcomes: finished jobs — including genuine
// failures — are served from the manifest after a restart and do NOT
// re-run.
func TestRestartKeepsTerminalOutcomes(t *testing.T) {
	dir := t.TempDir()
	_, client := startServer(t, Options{StateDir: dir, Workers: 1})
	ctx := testCtx(t)

	okID, err := client.Submit(ctx, &JobSpec{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}})
	if err != nil {
		t.Fatal(err)
	}
	// A genuinely failing job: attack bench with no key inputs.
	badID, err := client.Submit(ctx, &JobSpec{
		Type:   TypeAttack,
		Attack: &AttackSpec{Bench: c17Bench, Key: "keyinput0=1\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	okView, err := client.WaitDone(ctx, okID)
	if err != nil {
		t.Fatal(err)
	}
	badView, err := client.WaitDone(ctx, badID)
	if err != nil {
		t.Fatal(err)
	}
	if okView.State != StateDone || badView.State != StateFailed {
		t.Fatalf("states: ok=%s bad=%s", okView.State, badView.State)
	}
	if badView.Error == "" {
		t.Fatal("failed job reports no error")
	}

	// Restart against the same state dir: both jobs come back terminal
	// with their recorded outcomes; the failed one must not re-queue.
	restarted, client2 := startServer(t, Options{StateDir: dir, Workers: 1})
	if depth := restarted.q.size(); depth != 0 {
		t.Fatalf("restart re-queued %d terminal jobs", depth)
	}
	ok2, err := client2.Job(testCtx(t), okID)
	if err != nil {
		t.Fatal(err)
	}
	if ok2.State != StateDone || string(ok2.Result) == "" {
		t.Fatalf("recovered ok job: state=%s", ok2.State)
	}
	if ok2.Seconds != okView.Seconds {
		t.Fatalf("recovered Seconds = %v, want %v", ok2.Seconds, okView.Seconds)
	}
	bad2, err := client2.Job(testCtx(t), badID)
	if err != nil {
		t.Fatal(err)
	}
	if bad2.State != StateFailed || bad2.Error != badView.Error {
		t.Fatalf("recovered failed job: state=%s error=%q", bad2.State, bad2.Error)
	}
}

// TestCacheHitKeepsSeconds: resubmitting a byte-identical spec to a
// cache-backed daemon answers from the cache, marked Cached, with the
// original run's wall clock (the satellite regression at daemon
// level).
func TestCacheHitKeepsSeconds(t *testing.T) {
	c, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, Options{Workers: 1, Cache: c})
	ctx := testCtx(t)
	spec := func() *JobSpec {
		return &JobSpec{
			Type: TypeLock,
			Lock: &LockSpec{Bench: c17Bench, Scheme: "xor", KeyBits: 4, Seed: 3},
		}
	}
	coldID, err := client.Submit(ctx, spec())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := client.WaitDone(ctx, coldID)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != StateDone || cold.Cached {
		t.Fatalf("cold: state=%s cached=%v", cold.State, cold.Cached)
	}
	warmID, err := client.Submit(ctx, spec())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := client.WaitDone(ctx, warmID)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone || !warm.Cached {
		t.Fatalf("warm: state=%s cached=%v", warm.State, warm.Cached)
	}
	if warm.Seconds != cold.Seconds {
		t.Fatalf("warm Seconds = %v, want the original %v", warm.Seconds, cold.Seconds)
	}
	if string(warm.Result) != string(cold.Result) {
		t.Fatal("cached result differs from the original")
	}
	// Different tenant/priority shares the entry (scheduling fields
	// are not part of the key); NoCache opts out.
	sp := spec()
	sp.Tenant, sp.Priority = "other", 3
	id3, err := client.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := client.WaitDone(ctx, id3)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Cached {
		t.Fatal("tenant/priority changed the cache key")
	}
	sp = spec()
	sp.NoCache = true
	id4, err := client.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	v4, err := client.WaitDone(ctx, id4)
	if err != nil {
		t.Fatal(err)
	}
	if v4.Cached {
		t.Fatal("no_cache job served from cache")
	}
}

// TestMetricsAndList: /metrics is well-formed and the counters track
// completed work; /jobs lists every submission.
func TestMetricsAndList(t *testing.T) {
	_, client := startServer(t, Options{Workers: 2})
	ctx := testCtx(t)
	const n = 3
	for i := 0; i < n; i++ {
		id, err := client.Submit(ctx, &JobSpec{
			Type:   TypeLint,
			Tenant: "metrics",
			Lint:   &LintSpec{Bench: c17Bench},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WaitDone(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rild_up 1",
		"rild_draining 0",
		"rild_jobs_accepted_total 3",
		"rild_jobs_done_total 3",
		"rild_jobs_running 0",
		"rild_queue_depth 0",
		"rild_oracle_queries_total",
		"rild_sat_solve_calls_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, err := http.Get(client.Base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []*JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != n {
		t.Fatalf("listed %d jobs, want %d", len(list.Jobs), n)
	}
}

// TestSSEStream: the events stream ends with a terminal frame carrying
// the finished job.
func TestSSEStream(t *testing.T) {
	_, client := startServer(t, Options{Workers: 1})
	ctx := testCtx(t)
	targets, err := MakeLoadTargets(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Submit(ctx, &JobSpec{
		Type:   TypeAttack,
		Attack: &AttackSpec{Bench: targets[0].Bench, Key: targets[0].Key},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, client.Base+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0] != "state" || events[len(events)-1] != "done" {
		t.Fatalf("event sequence %v, want state ... done", events)
	}
	var final JobView
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("terminal frame state=%s error=%q", final.State, final.Error)
	}
}

// TestDrainRefusesSubmissions: a draining server 503s new jobs.
func TestDrainRefusesSubmissions(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	s.Drain(time.Second)
	client := &Client{Base: hs.URL}
	_, err = client.Submit(testCtx(t), &JobSpec{Type: TypeLint, Lint: &LintSpec{Bench: c17Bench}})
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit to draining server: %v", err)
	}
	// No stray temp files survive the drain.
	for _, sub := range []string{"specs", "ckpt"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Fatalf("drain left temp file %s/%s", sub, e.Name())
			}
		}
	}
}

// TestLoadTestSmall exercises the load harness end to end at unit-test
// scale: every job terminal, none lost or duplicated.
func TestLoadTestSmall(t *testing.T) {
	_, client := startServer(t, Options{Workers: 4})
	rep, err := LoadTest(testCtx(t), client.Base, LoadOptions{
		Jobs:        40,
		Concurrency: 8,
		Tenants:     3,
		Variants:    4,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("load report: %s", rep)
	}
	if rep.Done != 40 {
		t.Fatalf("completed %d/40: %s", rep.Done, rep)
	}
}
