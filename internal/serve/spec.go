// Package serve is the rild daemon: a long-running HTTP JSON service
// that accepts lock / attack / lint / sweep jobs, runs them on the
// sweep worker pool with per-job deadlines and panic isolation, and
// persists every outcome through the sweep checkpoint manifest (plus
// per-attack DIP journals) so a killed daemon restarts and resumes
// in-flight attacks without repeating a single oracle query.
//
// The package splits into:
//
//   - spec.go: the job submission schema and its validation
//   - queue.go: the priority / per-tenant fair scheduler
//   - job.go: the per-type job runners (attack, lock, lint, sweep)
//   - serve.go: the Server — persistence, workers, recovery, drain
//   - http.go: the HTTP surface (submit, status, SSE, metrics)
//   - loadtest.go: a client and load-test harness driven by cmd/rild
package serve

import (
	"fmt"
	"strings"
	"time"
)

// Job types accepted by the daemon.
const (
	TypeAttack = "attack" // oracle-guided SAT attack (or AppSAT) on a locked bench
	TypeLock   = "lock"   // lock a plain bench with one of the repo's schemes
	TypeLint   = "lint"   // netlint hygiene pass over a locked bench
	TypeSweep  = "sweep"  // a batch of attack targets run as one job
)

// Priority bounds. Higher runs first; within a priority, tenants are
// served round-robin and each tenant's jobs run in submission order.
const (
	MinPriority = -8
	MaxPriority = 8
)

// JobSpec is the submission payload (POST /jobs). Exactly one of the
// per-type sub-specs must be set, matching Type.
type JobSpec struct {
	// Type selects the job runner: attack, lock, lint or sweep.
	Type string `json:"type"`
	// Tenant names the submitter for fair scheduling. Empty is the
	// anonymous tenant; all tenants at the same priority share the
	// worker pool round-robin.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders dispatch (higher first), clamped to
	// [MinPriority, MaxPriority].
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the whole job (queue wait excluded). Zero means
	// the server default; negative is rejected at submission, matching
	// the sweep.Job.Timeout contract.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache skips the result cache for this job even when the daemon
	// runs with one (e.g. to force a live attack).
	NoCache bool `json:"no_cache,omitempty"`

	Attack *AttackSpec `json:"attack,omitempty"`
	Lock   *LockSpec   `json:"lock,omitempty"`
	Lint   *LintSpec   `json:"lint,omitempty"`
	Sweep  *SweepSpec  `json:"sweep,omitempty"`
}

// AttackSpec is one oracle-guided attack target. The locked netlist
// and its correct key travel inline (the daemon never reads client
// paths), exactly as cmd/satattack would read them from disk.
type AttackSpec struct {
	// Bench is the locked netlist in .bench text.
	Bench string `json:"bench"`
	// Key is the correct key, one name=bit line per key input (the
	// cmd/locker key-file format). It activates the simulated oracle.
	Key string `json:"key"`
	// KeyPrefix identifies key inputs by name prefix ("keyinput" when
	// empty).
	KeyPrefix string `json:"key_prefix,omitempty"`
	// TimeoutMS is the SAT budget: on expiry the attack reports the
	// paper's ∞ verdict (status "timeout") as a successful result,
	// unlike the whole-job deadline which fails the job. Zero means no
	// budget beyond the job deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// AppSAT runs the approximate attack instead of the exact one.
	AppSAT bool `json:"appsat,omitempty"`
	// BVA applies bounded-variable-addition preprocessing.
	BVA bool `json:"bva,omitempty"`
	// Portfolio >= 2 races that many diversified CDCL workers per
	// solver call.
	Portfolio int `json:"portfolio,omitempty"`
	// Verify re-checks a recovered key against the oracle (16 random
	// rounds). Off by default so the oracle-query accounting of a
	// resumed attack stays exactly iterations-replayed.
	Verify bool `json:"verify,omitempty"`
}

// LockSpec locks a plain bench with one of the repo's schemes; the
// scheme names match cmd/locker.
type LockSpec struct {
	// Bench is the original netlist in .bench text.
	Bench string `json:"bench"`
	// Scheme: ril, lut, xor, sarlock, antisat, sfll, caslock, meso.
	Scheme string `json:"scheme"`
	// Size is the RIL block geometry, e.g. "8x8" (ril only).
	Size string `json:"size,omitempty"`
	// Blocks is the RIL block / LUT / MESO gate count.
	Blocks int `json:"blocks,omitempty"`
	// KeyBits sizes the key for the baseline schemes.
	KeyBits int `json:"key_bits,omitempty"`
	// HD is the SFLL-HD Hamming distance.
	HD int `json:"hd,omitempty"`
	// Seed drives the deterministic lock randomness (0 means 1).
	Seed int64 `json:"seed,omitempty"`
	// Scan adds the hidden MTJ_SE layer (ril only).
	Scan bool `json:"scan,omitempty"`
}

// LintSpec runs the netlint hygiene analyzers over a bench.
type LintSpec struct {
	Bench     string `json:"bench"`
	KeyPrefix string `json:"key_prefix,omitempty"`
}

// SweepSpec batches attack targets into one job; targets run
// sequentially under the job's deadline, each with its own DIP
// journal, so a restart resumes mid-sweep without re-querying.
type SweepSpec struct {
	Targets []AttackSpec `json:"targets"`
}

// lockSchemes lists the accepted LockSpec.Scheme values.
var lockSchemes = []string{"ril", "lut", "xor", "sarlock", "antisat", "sfll", "caslock", "meso"}

// Validate rejects malformed specs at submission time, before anything
// is persisted or queued.
func (s *JobSpec) Validate() error {
	set := 0
	for _, sub := range []bool{s.Attack != nil, s.Lock != nil, s.Lint != nil, s.Sweep != nil} {
		if sub {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("serve: spec must set exactly one of attack/lock/lint/sweep, got %d", set)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative job timeout %dms", s.TimeoutMS)
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("serve: tenant name longer than 64 bytes")
	}
	switch s.Type {
	case TypeAttack:
		if s.Attack == nil {
			return fmt.Errorf("serve: type %q without matching sub-spec", s.Type)
		}
		return s.Attack.validate()
	case TypeLock:
		if s.Lock == nil {
			return fmt.Errorf("serve: type %q without matching sub-spec", s.Type)
		}
		return s.Lock.validate()
	case TypeLint:
		if s.Lint == nil {
			return fmt.Errorf("serve: type %q without matching sub-spec", s.Type)
		}
		if strings.TrimSpace(s.Lint.Bench) == "" {
			return fmt.Errorf("serve: lint: empty bench")
		}
		return nil
	case TypeSweep:
		if s.Sweep == nil {
			return fmt.Errorf("serve: type %q without matching sub-spec", s.Type)
		}
		if len(s.Sweep.Targets) == 0 {
			return fmt.Errorf("serve: sweep: no targets")
		}
		for i := range s.Sweep.Targets {
			if err := s.Sweep.Targets[i].validate(); err != nil {
				return fmt.Errorf("serve: sweep target %d: %w", i, err)
			}
		}
		return nil
	}
	return fmt.Errorf("serve: unknown job type %q", s.Type)
}

func (a *AttackSpec) validate() error {
	if strings.TrimSpace(a.Bench) == "" {
		return fmt.Errorf("serve: attack: empty bench")
	}
	if strings.TrimSpace(a.Key) == "" {
		return fmt.Errorf("serve: attack: empty key")
	}
	if a.TimeoutMS < 0 {
		return fmt.Errorf("serve: attack: negative timeout %dms", a.TimeoutMS)
	}
	return nil
}

func (l *LockSpec) validate() error {
	if strings.TrimSpace(l.Bench) == "" {
		return fmt.Errorf("serve: lock: empty bench")
	}
	for _, s := range lockSchemes {
		if l.Scheme == s {
			return nil
		}
	}
	return fmt.Errorf("serve: lock: unknown scheme %q", l.Scheme)
}

// clampPriority folds an out-of-range priority into bounds instead of
// rejecting it; a greedy client only gains the legal maximum.
func clampPriority(p int) int {
	if p < MinPriority {
		return MinPriority
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

// jobTimeout resolves a spec's whole-job deadline against the server
// default.
func (s *JobSpec) jobTimeout(def time.Duration) time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return def
}
