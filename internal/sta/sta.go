// Package sta provides static timing analysis and area/power proxies
// for gate-level netlists: critical-path delay under a per-gate-type
// delay model, transistor-count area estimation, and a switching-
// activity power proxy. The overhead analysis of locked vs original
// circuits (the PPA side of the paper's §IV-E) is built on it.
package sta

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/netlist"
)

// DelayModel returns the propagation delay of a gate (arbitrary units,
// roughly FO4-normalized).
type DelayModel func(t netlist.GateType, fanin int) float64

// UnitDelay charges one unit per logic level.
func UnitDelay(t netlist.GateType, fanin int) float64 {
	switch t {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return 0
	}
	return 1
}

// TechDelay approximates a standard-cell library: inverting stages are
// fast, XOR and MUX cost more, and wide gates pay a fanin penalty.
func TechDelay(t netlist.GateType, fanin int) float64 {
	var base float64
	switch t {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return 0
	case netlist.Not:
		base = 0.6
	case netlist.Buf:
		base = 0.8
	case netlist.Nand, netlist.Nor:
		base = 1.0
	case netlist.And, netlist.Or:
		base = 1.4 // NAND/NOR + inverter
	case netlist.Xor, netlist.Xnor:
		base = 1.8
	case netlist.Mux:
		base = 1.6
	default:
		base = 1.0
	}
	if fanin > 2 {
		base += 0.35 * float64(fanin-2)
	}
	return base
}

// transistors estimates the MOS transistor count of a gate.
func transistors(t netlist.GateType, fanin int) int {
	switch t {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return 0
	case netlist.Not:
		return 2
	case netlist.Buf:
		return 4
	case netlist.Nand, netlist.Nor:
		return 2 * fanin
	case netlist.And, netlist.Or:
		return 2*fanin + 2
	case netlist.Xor, netlist.Xnor:
		return 4 * fanin
	case netlist.Mux:
		return 6 // transmission-gate mux + select inverter
	}
	return 4
}

// Result is a timing report.
type Result struct {
	Delay        float64   // critical-path delay
	Arrival      []float64 // per gate
	CriticalPath []int     // gate IDs from a primary input to the latest output
}

// Analyze computes arrival times and the critical path.
func Analyze(nl *netlist.Netlist, model DelayModel) (*Result, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	arr := make([]float64, nl.NumGates())
	pred := make([]int, nl.NumGates())
	for i := range pred {
		pred[i] = -1
	}
	for _, id := range order {
		g := &nl.Gates[id]
		worst := 0.0
		for _, f := range g.Fanin {
			if arr[f] > worst {
				worst = arr[f]
				pred[id] = f
			}
		}
		if len(g.Fanin) > 0 && pred[id] < 0 {
			pred[id] = g.Fanin[0]
		}
		arr[id] = worst + model(g.Type, len(g.Fanin))
	}
	res := &Result{Arrival: arr}
	endpoint := -1
	for _, id := range nl.Outputs {
		if arr[id] > res.Delay || endpoint < 0 {
			res.Delay = arr[id]
			endpoint = id
		}
	}
	for id := endpoint; id >= 0; id = pred[id] {
		res.CriticalPath = append(res.CriticalPath, id)
	}
	// Reverse into input→output order.
	for i, j := 0, len(res.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		res.CriticalPath[i], res.CriticalPath[j] = res.CriticalPath[j], res.CriticalPath[i]
	}
	return res, nil
}

// Area estimates the transistor count of the netlist.
func Area(nl *netlist.Netlist) int {
	total := 0
	for id := range nl.Gates {
		g := &nl.Gates[id]
		total += transistors(g.Type, len(g.Fanin))
	}
	return total
}

// SwitchingActivity estimates the average toggle probability per gate
// over random consecutive input pairs — a dynamic-power proxy: power ∝
// Σ activity(g)·cap(g), with capacitance taken as the transistor count.
func SwitchingActivity(nl *netlist.Netlist, rounds int, seed int64) (perGate []float64, powerProxy float64, err error) {
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	toggles := make([]float64, nl.NumGates())
	in := make([]uint64, len(nl.Inputs))
	prev := make([]uint64, nl.NumGates())
	samples := 0
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		sim.Run(in)
		if r > 0 {
			for id := range toggles {
				cur := sim.Value(id)
				toggles[id] += float64(bits.OnesCount64(cur ^ prev[id]))
			}
			samples += 64
		}
		for id := range prev {
			prev[id] = sim.Value(id)
		}
	}
	if samples == 0 {
		return nil, 0, fmt.Errorf("sta: need rounds >= 2")
	}
	perGate = make([]float64, nl.NumGates())
	for id := range perGate {
		perGate[id] = toggles[id] / float64(samples)
		g := &nl.Gates[id]
		powerProxy += perGate[id] * float64(transistors(g.Type, len(g.Fanin)))
	}
	return perGate, powerProxy, nil
}

// PPA bundles the three metrics.
type PPA struct {
	Delay      float64
	Area       int
	PowerProxy float64
	Gates      int
}

// Measure computes the PPA triple with the technology delay model.
func Measure(nl *netlist.Netlist, seed int64) (PPA, error) {
	timing, err := Analyze(nl, TechDelay)
	if err != nil {
		return PPA{}, err
	}
	_, power, err := SwitchingActivity(nl, 16, seed)
	if err != nil {
		return PPA{}, err
	}
	return PPA{
		Delay:      timing.Delay,
		Area:       Area(nl),
		PowerProxy: power,
		Gates:      nl.NumLogicGates(),
	}, nil
}

// Overhead returns (locked - original)/original per metric, as
// fractions.
func Overhead(orig, locked PPA) (delay, area, power float64) {
	rel := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (b - a) / a
	}
	return rel(orig.Delay, locked.Delay),
		rel(float64(orig.Area), float64(locked.Area)),
		rel(orig.PowerProxy, locked.PowerProxy)
}
