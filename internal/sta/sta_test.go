package sta

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
)

func chain(t *testing.T, depth int) *netlist.Netlist {
	t.Helper()
	n := netlist.New("chain")
	cur := n.AddInput("a")
	other := n.AddInput("b")
	for i := 0; i < depth; i++ {
		cur = n.AddGate(n.FreshName("g"), netlist.Nand, cur, other)
	}
	n.MarkOutput(cur)
	return n
}

func TestUnitDelayEqualsDepth(t *testing.T) {
	n := chain(t, 7)
	res, err := Analyze(n, UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != 7 {
		t.Errorf("unit delay %v, want 7", res.Delay)
	}
	if len(res.CriticalPath) != 8 { // input + 7 gates
		t.Errorf("critical path length %d, want 8", len(res.CriticalPath))
	}
	// The path must be topologically connected.
	for i := 1; i < len(res.CriticalPath); i++ {
		g := n.Gates[res.CriticalPath[i]]
		ok := false
		for _, f := range g.Fanin {
			if f == res.CriticalPath[i-1] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("critical path broken at %d", i)
		}
	}
}

func TestTechDelayOrdering(t *testing.T) {
	if !(TechDelay(netlist.Not, 1) < TechDelay(netlist.Nand, 2)) {
		t.Error("inverter should be fastest")
	}
	if !(TechDelay(netlist.Nand, 2) < TechDelay(netlist.Xor, 2)) {
		t.Error("XOR should cost more than NAND")
	}
	if !(TechDelay(netlist.Nand, 2) < TechDelay(netlist.Nand, 4)) {
		t.Error("wide gates should pay a fanin penalty")
	}
	if TechDelay(netlist.Input, 0) != 0 {
		t.Error("inputs are free")
	}
}

func TestAreaCounts(t *testing.T) {
	n := netlist.New("a")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate("g", netlist.Nand, a, b) // 4 T
	h := n.AddGate("h", netlist.Not, g)     // 2 T
	n.MarkOutput(h)
	if got := Area(n); got != 6 {
		t.Errorf("area %d, want 6", got)
	}
}

func TestSwitchingActivityBounds(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "s", Inputs: 12, Outputs: 6, Gates: 150, Locality: 0.6,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	act, power, err := SwitchingActivity(nl, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if power <= 0 {
		t.Error("zero power proxy on a live circuit")
	}
	for id, a := range act {
		if a < 0 || a > 1 {
			t.Fatalf("activity[%d] = %v out of [0,1]", id, a)
		}
	}
}

func TestLockedPPAOverheadPositiveAndModest(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "p", Inputs: 20, Outputs: 10, Gates: 900, Locality: 0.7,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 3, Size: core.Size8x8x8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	po, err := Measure(orig, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Measure(bound, 7)
	if err != nil {
		t.Fatal(err)
	}
	dDelay, dArea, dPower := Overhead(po, pl)
	if dArea <= 0 {
		t.Errorf("area overhead %v should be positive", dArea)
	}
	// The paper's small-overhead claim: a few blocks on a ~900-gate
	// circuit stay under 100% area overhead and do not explode delay.
	if dArea > 1.0 {
		t.Errorf("area overhead %.2f implausibly high", dArea)
	}
	if dDelay < -0.01 {
		t.Errorf("locked circuit got faster (%v) — timing model broken", dDelay)
	}
	_ = dPower
}

func TestMeasureNeedsValidNetlist(t *testing.T) {
	n := netlist.New("bad")
	a := n.AddInput("a")
	// A combinational self-loop: gate 1 reads itself.
	n.Gates = append(n.Gates, netlist.Gate{Name: "loop", Type: netlist.Not, Fanin: []int{1}})
	n.MarkOutput(1)
	_ = a
	if _, err := Analyze(n, UnitDelay); err == nil {
		t.Error("cyclic netlist accepted")
	}
}
