package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
)

type cellPayload struct {
	N       int    `json:"n"`
	Verdict string `json:"verdict"`
}

// cacheJobs builds n keyed jobs whose Run increments ran.
func cacheJobs(t *testing.T, n int, ran *atomic.Int64) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		k, err := cache.NewKey("sweep-test").Int("cell", int64(i)).Key()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{
			Name:     fmt.Sprintf("job%d", i),
			Seed:     DeriveSeed(7, i),
			CacheKey: k,
			Run: func(ctx context.Context, seed int64) (any, error) {
				ran.Add(1)
				return &cellPayload{N: i, Verdict: "done"}, nil
			},
		}
	}
	return jobs
}

// TestRunnerCacheWarm: a second sweep over the same keyed jobs runs
// nothing — every result is served from the cache with the original
// payload.
func TestRunnerCacheWarm(t *testing.T) {
	c, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs := cacheJobs(t, 4, &ran)

	cold := (&Runner{Workers: 2, Cache: c}).Run(context.Background(), jobs)
	if err := FirstErr(cold); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("cold run executed %d jobs, want 4", ran.Load())
	}
	if s := c.Stats(); s.Puts != 4 {
		t.Fatalf("cold run stored %d entries, want 4: %+v", s.Puts, s)
	}

	warm := (&Runner{Workers: 2, Cache: c}).Run(context.Background(), jobs)
	if err := FirstErr(warm); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("warm run executed %d extra jobs, want 0", ran.Load()-4)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("warm job %d not marked cached", i)
		}
		raw, ok := warm[i].Value.(json.RawMessage)
		if !ok {
			t.Fatalf("warm job %d value is %T", i, warm[i].Value)
		}
		var p cellPayload
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Fatal(err)
		}
		if p.N != i || p.Verdict != "done" {
			t.Fatalf("warm job %d payload %+v", i, p)
		}
	}

	// Jobs without a key always run.
	var keyless atomic.Int64
	nk := []Job{{Name: "nokey", Run: func(ctx context.Context, seed int64) (any, error) {
		keyless.Add(1)
		return "x", nil
	}}}
	for r := 0; r < 2; r++ {
		if err := FirstErr((&Runner{Cache: c}).Run(context.Background(), nk)); err != nil {
			t.Fatal(err)
		}
	}
	if keyless.Load() != 2 {
		t.Fatalf("keyless job ran %d times, want 2", keyless.Load())
	}
}

// TestRunnerCacheSkipsFailures: failed jobs are never stored, so the
// next run retries them.
func TestRunnerCacheSkipsFailures(t *testing.T) {
	c, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := cache.NewKey("sweep-test").Int("fail", 1).Key()
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs := []Job{{Name: "flaky", CacheKey: k,
		Run: func(ctx context.Context, seed int64) (any, error) {
			ran.Add(1)
			return nil, fmt.Errorf("boom")
		}}}
	for r := 0; r < 2; r++ {
		res := (&Runner{Cache: c}).Run(context.Background(), jobs)
		if res[0].Err == nil {
			t.Fatal("failed job reported success")
		}
	}
	if ran.Load() != 2 {
		t.Fatalf("failed job ran %d times, want 2 (failures must not cache)", ran.Load())
	}
}

// TestResumeConsultsCache is the issue's resume regression: a resumed
// sweep whose manifest covers only some jobs must serve the rest from
// the cache — zero live executions — and fold the cache hits back into
// the manifest so the next resume needs neither.
func TestResumeConsultsCache(t *testing.T) {
	c, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := t.TempDir()
	var ran atomic.Int64
	jobs := cacheJobs(t, 4, &ran)

	// Interrupted first run: only jobs 0-1 reach the manifest, but all
	// four results made it into the cache (e.g. from an earlier sweep
	// elsewhere sharing the cache directory).
	ckpt, err := NewCheckpoint(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	partial := (&Runner{Workers: 1, Checkpoint: ckpt, Cache: c}).Run(context.Background(), jobs[:2])
	if err := FirstErr(partial); err != nil {
		t.Fatal(err)
	}
	full := (&Runner{Workers: 1, Cache: c}).Run(context.Background(), jobs[2:])
	if err := FirstErr(full); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("setup executed %d jobs, want 4", ran.Load())
	}

	// The resumed sweep: manifest knows 0-1, cache knows 2-3.
	resumed, err := ResumeCheckpoint(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	res := (&Runner{Workers: 2, Checkpoint: resumed, Cache: c}).Run(context.Background(), jobs)
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("resume executed %d jobs live, want 0", ran.Load()-4)
	}
	for i := range res {
		wantResumed := i < 2
		if res[i].Resumed != wantResumed || res[i].Cached == wantResumed {
			t.Fatalf("job %d: resumed=%v cached=%v", i, res[i].Resumed, res[i].Cached)
		}
	}
	// Cache hits were recorded into the manifest: a further resume is
	// answered entirely by the checkpoint.
	again, err := ResumeCheckpoint(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if _, ok := again.Completed(jobs[i].Name); !ok {
			t.Fatalf("job %d missing from manifest after cache-hit resume", i)
		}
	}
}

// TestRunnerCacheWarmKeepsSeconds: a cache hit must report the
// original run's wall clock, not 0 — warm SATRuntimeTable/Table I
// cells and JSON sweep results show real runtimes (the schema-2 entry
// stores the seconds alongside the payload).
func TestRunnerCacheWarmKeepsSeconds(t *testing.T) {
	c, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := cache.NewKey("sweep-test").Int("timed", 1).Key()
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{
		Name:     "slow",
		CacheKey: k,
		Run: func(ctx context.Context, _ int64) (any, error) {
			time.Sleep(30 * time.Millisecond)
			return &cellPayload{N: 1, Verdict: "done"}, nil
		},
	}}
	cold := (&Runner{Cache: c}).Run(context.Background(), jobs)
	if err := FirstErr(cold); err != nil {
		t.Fatal(err)
	}
	if cold[0].Seconds < 0.03 {
		t.Fatalf("cold Seconds = %v, want >= 0.03", cold[0].Seconds)
	}
	warm := (&Runner{Cache: c}).Run(context.Background(), jobs)
	if err := FirstErr(warm); err != nil {
		t.Fatal(err)
	}
	if !warm[0].Cached {
		t.Fatal("warm job not served from cache")
	}
	if warm[0].Seconds != cold[0].Seconds {
		t.Fatalf("warm Seconds = %v, want the original %v", warm[0].Seconds, cold[0].Seconds)
	}
	if warm[0].Elapsed <= 0 {
		t.Fatalf("warm Elapsed = %v, want the restored duration", warm[0].Elapsed)
	}
}
