package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Sweep checkpointing: a sweep directory holds one manifest
// (manifest.json, rewritten atomically after every job completion) and
// one private checkpoint file per job (for jobs that checkpoint their
// own progress, e.g. SAT-attack DIP journals via Checkpoint.JobFile).
// On resume, jobs recorded "done" in the manifest are skipped — their
// recorded results are returned without re-running — while killed or
// failed jobs run again and pick up their own partial checkpoint
// files. A corrupted or truncated manifest degrades to a fresh sweep
// (Degraded reports it) rather than failing.

// ManifestVersion is the current manifest format version. Loading a
// manifest with a different version degrades to a fresh sweep.
const ManifestVersion = 1

// ManifestEntry is one job's recorded outcome.
type ManifestEntry struct {
	Name    string          `json:"name"`
	Status  string          `json:"status"` // "done" | "failed"
	Value   json.RawMessage `json:"value,omitempty"`
	Error   string          `json:"error,omitempty"`
	Seconds float64         `json:"seconds"`
}

// manifestFile is the on-disk manifest shape.
type manifestFile struct {
	Version int              `json:"version"`
	Jobs    []*ManifestEntry `json:"jobs"`
}

// Checkpoint persists sweep progress in a directory. Safe for
// concurrent use by sweep workers.
type Checkpoint struct {
	dir      string
	mu       sync.Mutex
	entries  map[string]*ManifestEntry
	order    []string // insertion order, for stable manifest output
	degraded bool
}

// ManifestPath returns the manifest file path inside a checkpoint dir.
func ManifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// NewCheckpoint creates (or wipes the manifest of) a checkpoint
// directory for a fresh sweep.
func NewCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.Remove(ManifestPath(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return &Checkpoint{dir: dir, entries: map[string]*ManifestEntry{}}, nil
}

// ResumeCheckpoint opens a checkpoint directory for a resumed sweep,
// loading the manifest. A missing manifest is a normal fresh start; a
// corrupt, truncated or wrong-version manifest degrades to a fresh
// start (Degraded reports it) instead of erroring, so a damaged
// checkpoint can never block re-running the sweep.
func ResumeCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Checkpoint{dir: dir, entries: map[string]*ManifestEntry{}}
	raw, err := os.ReadFile(ManifestPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	if err := json.Unmarshal(raw, &mf); err != nil || mf.Version != ManifestVersion {
		c.degraded = true
		return c, nil
	}
	for _, e := range mf.Jobs {
		if e == nil || e.Name == "" || (e.Status != "done" && e.Status != "failed") {
			c.degraded = true
			c.entries = map[string]*ManifestEntry{}
			c.order = nil
			return c, nil
		}
		if _, dup := c.entries[e.Name]; dup {
			c.degraded = true
			c.entries = map[string]*ManifestEntry{}
			c.order = nil
			return c, nil
		}
		c.entries[e.Name] = e
		c.order = append(c.order, e.Name)
	}
	return c, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpoint) Dir() string { return c.dir }

// Degraded reports that a resume found a corrupt manifest and fell
// back to a fresh sweep.
func (c *Checkpoint) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Completed returns the recorded entry for a job that finished
// successfully in a previous run. Failed jobs are not reported — they
// re-run on resume.
func (c *Checkpoint) Completed(name string) (*ManifestEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || e.Status != "done" {
		return nil, false
	}
	return e, true
}

// JobFile returns the job's private checkpoint file path inside the
// checkpoint directory, derived stably from the job name (sanitized
// plus a CRC32 suffix so distinct names never collide).
func (c *Checkpoint) JobFile(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '.' || r == '-' || r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
		if sb.Len() >= 48 {
			break
		}
	}
	return filepath.Join(c.dir, fmt.Sprintf("%s-%08x.journal", sb.String(), crc32.ChecksumIEEE([]byte(name))))
}

// Record stores one finished job and atomically rewrites the manifest,
// exactly as the Runner does after each completion. External drivers
// that dispatch jobs one at a time (the rild daemon's queue workers
// run RunOne per dequeued job) persist completions through it so a
// restart resumes from the same manifest a batch sweep would leave.
func (c *Checkpoint) Record(res Result) error { return c.record(res) }

// record stores one finished job and atomically rewrites the manifest
// (write temp, fsync, rename) so a kill mid-write can never corrupt a
// previously valid manifest.
func (c *Checkpoint) record(res Result) error {
	e := &ManifestEntry{Name: res.Name, Status: "done", Seconds: res.Seconds}
	if res.Err != nil {
		e.Status = "failed"
		e.Error = res.Err.Error()
	} else if res.Value != nil {
		raw, err := json.Marshal(res.Value)
		if err != nil {
			// A non-serializable value is recorded without its payload;
			// resume will still skip the job but report a nil value.
			raw = nil
		}
		e.Value = raw
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, seen := c.entries[res.Name]; !seen {
		c.order = append(c.order, res.Name)
	}
	c.entries[res.Name] = e
	return c.flushLocked()
}

// flushLocked writes the manifest atomically. Caller holds c.mu.
func (c *Checkpoint) flushLocked() error {
	mf := manifestFile{Version: ManifestVersion}
	for _, name := range c.order {
		mf.Jobs = append(mf.Jobs, c.entries[name])
	}
	raw, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".manifest-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), ManifestPath(c.dir)); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is synced;
	// without this a crash can resurrect the previous manifest even
	// though record() already reported the job persisted.
	return syncDir(c.dir)
}

// SyncDir fsyncs a directory so a preceding rename in it survives a
// crash — the second half of the write-temp/fsync/rename discipline,
// exported for other state writers (the daemon's job-spec files) that
// follow it.
func SyncDir(dir string) error { return syncDir(dir) }

// syncDir fsyncs a directory so a preceding rename in it survives a
// crash. Filesystems that reject directory fsync (some network
// mounts return EINVAL or ENOTSUP) degrade to the rename's own
// guarantees.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return errors.Join(err, d.Close())
	}
	return d.Close()
}

// Complete reports whether every named job is recorded "done".
func (c *Checkpoint) Complete(names []string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range names {
		if e, ok := c.entries[n]; !ok || e.Status != "done" {
			return false
		}
	}
	return true
}
