package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func checkpointJobs(n int, ran *int32, failing map[int]bool) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%02d", i),
			Seed: DeriveSeed(7, i),
			Run: func(ctx context.Context, seed int64) (any, error) {
				atomic.AddInt32(ran, 1)
				if failing[i] {
					return nil, errors.New("deliberate failure")
				}
				return map[string]int64{"seed": seed}, nil
			},
		}
	}
	return jobs
}

func jobNames(jobs []Job) []string {
	names := make([]string, len(jobs))
	for i, j := range jobs {
		names[i] = j.Name
	}
	return names
}

func TestCheckpointManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ran int32
	jobs := checkpointJobs(4, &ran, map[int]bool{2: true})
	r := &Runner{Workers: 2, Checkpoint: ckpt}
	results := r.Run(context.Background(), jobs)
	if ran != 4 {
		t.Fatalf("ran %d jobs, want 4", ran)
	}
	if ckpt.Complete(jobNames(jobs)) {
		t.Error("Complete true despite a failed job")
	}

	// The manifest must be valid JSON recording all four outcomes.
	raw, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var mf manifestFile
	if err := json.Unmarshal(raw, &mf); err != nil {
		t.Fatalf("manifest unparseable: %v\n%s", err, raw)
	}
	if mf.Version != ManifestVersion || len(mf.Jobs) != 4 {
		t.Fatalf("manifest version=%d jobs=%d", mf.Version, len(mf.Jobs))
	}
	// Manifest entries land in completion order (workers race), so
	// look outcomes up by name.
	byName := map[string]*ManifestEntry{}
	for _, e := range mf.Jobs {
		byName[e.Name] = e
	}
	for i := range jobs {
		want := "done"
		if i == 2 {
			want = "failed"
		}
		e := byName[jobs[i].Name]
		if e == nil || e.Status != want {
			t.Errorf("manifest entry for %s = %+v, want status %q", jobs[i].Name, e, want)
		}
	}

	// Resume: done jobs skipped with recorded payloads, failed job
	// re-runs.
	resumed, err := ResumeCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Degraded() {
		t.Error("clean manifest reported degraded")
	}
	ran = 0
	jobs2 := checkpointJobs(4, &ran, nil) // job 2 succeeds this time
	r2 := &Runner{Workers: 2, Checkpoint: resumed}
	results2 := r2.Run(context.Background(), jobs2)
	if ran != 1 {
		t.Fatalf("resume ran %d jobs, want 1 (only the failed one)", ran)
	}
	for i, res := range results2 {
		if i == 2 {
			if res.Resumed || res.Err != nil {
				t.Errorf("job 2 should have re-run cleanly: %+v", res)
			}
			continue
		}
		if !res.Resumed {
			t.Errorf("job %d not marked resumed", i)
		}
		// The recorded payload must round-trip the original value.
		rawVal, ok := res.Value.(json.RawMessage)
		if !ok {
			t.Fatalf("job %d resumed value is %T, want json.RawMessage", i, res.Value)
		}
		var got map[string]int64
		if err := json.Unmarshal(rawVal, &got); err != nil {
			t.Fatalf("job %d resumed value unparseable: %v", i, err)
		}
		want := results[i].Value.(map[string]int64)
		if got["seed"] != want["seed"] {
			t.Errorf("job %d resumed seed %d, want %d", i, got["seed"], want["seed"])
		}
	}
	if !resumed.Complete(jobNames(jobs2)) {
		t.Error("Complete false after all jobs done")
	}
}

func TestResumeCheckpointDegradesOnCorruptManifest(t *testing.T) {
	for name, contents := range map[string]string{
		"truncated":     `{"version": 1, "jobs": [{"na`,
		"wrong-version": `{"version": 99, "jobs": []}` + "\n",
		"bad-status":    `{"version": 1, "jobs": [{"name": "a", "status": "maybe"}]}` + "\n",
		"empty-name":    `{"version": 1, "jobs": [{"name": "", "status": "done"}]}` + "\n",
		"duplicate":     `{"version": 1, "jobs": [{"name": "a", "status": "done"}, {"name": "a", "status": "done"}]}` + "\n",
		"not-json":      "I am not a manifest\n",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(ManifestPath(dir), []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			ckpt, err := ResumeCheckpoint(dir)
			if err != nil {
				t.Fatalf("corrupt manifest errored instead of degrading: %v", err)
			}
			if !ckpt.Degraded() {
				t.Error("corrupt manifest not reported degraded")
			}
			if _, ok := ckpt.Completed("a"); ok {
				t.Error("degraded checkpoint still reports completed jobs")
			}
			// The degraded checkpoint must behave like a fresh one: every
			// job runs, and the manifest is rewritten valid.
			var ran int32
			jobs := checkpointJobs(2, &ran, nil)
			(&Runner{Workers: 1, Checkpoint: ckpt}).Run(context.Background(), jobs)
			if ran != 2 {
				t.Errorf("degraded resume ran %d jobs, want 2", ran)
			}
			if re, err := ResumeCheckpoint(dir); err != nil || re.Degraded() {
				t.Errorf("manifest still bad after degraded sweep rewrote it: err=%v degraded=%v", err, re.Degraded())
			}
		})
	}
}

func TestResumeCheckpointMissingManifestIsFresh(t *testing.T) {
	ckpt, err := ResumeCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Degraded() {
		t.Error("missing manifest reported degraded")
	}
}

func TestNewCheckpointWipesOldManifest(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.record(Result{Name: "old", Value: 1}); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Completed("old"); ok {
		t.Error("NewCheckpoint kept stale manifest entries")
	}
	if _, err := os.Stat(ManifestPath(dir)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("manifest file survived NewCheckpoint: %v", err)
	}
}

func TestJobFileSanitizationAndCollisions(t *testing.T) {
	ckpt, err := NewCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"c17/ril=1 size=2x2",
		"c17_ril_1_size_2x2", // sanitizes to same stem as above
		"../../../etc/passwd",
		"plain",
		"Имя-с-юникодом",
		"", // empty names still get a distinct file
		"x" + string(make([]byte, 300)),
	}
	seen := map[string]string{}
	for _, n := range names {
		p := ckpt.JobFile(n)
		if filepath.Dir(p) != ckpt.Dir() {
			t.Errorf("JobFile(%q) escapes the checkpoint dir: %s", n, p)
		}
		if prev, dup := seen[p]; dup {
			t.Errorf("JobFile collision: %q and %q both map to %s", prev, n, p)
		}
		seen[p] = n
		if len(filepath.Base(p)) > 64+len("-00000000.journal") {
			t.Errorf("JobFile(%q) base name too long: %s", n, filepath.Base(p))
		}
		// The path must actually be usable.
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Errorf("JobFile(%q) unwritable: %v", n, err)
		}
	}
}

func TestCheckpointConcurrentRecord(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ckpt.record(Result{Name: fmt.Sprintf("j%d", i), Value: i}); err != nil {
				t.Errorf("record j%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	re, err := ResumeCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Degraded() {
		t.Fatal("manifest corrupt after concurrent records")
	}
	for i := 0; i < n; i++ {
		if _, ok := re.Completed(fmt.Sprintf("j%d", i)); !ok {
			t.Errorf("j%d missing from manifest", i)
		}
	}
}

// TestCheckpointResumeAfterCancel models the kill-and-resume flow at
// the sweep layer: cancel a sweep partway, then resume; previously
// finished jobs are skipped and the manifest ends complete.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 8
	var ran int32
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%02d", i),
			Run: func(jctx context.Context, seed int64) (any, error) {
				atomic.AddInt32(&ran, 1)
				if i == 2 {
					cancel() // "kill" arrives while the sweep is mid-flight
				}
				return i, jctx.Err()
			},
		}
	}
	(&Runner{Workers: 1, Checkpoint: ckpt}).Run(ctx, jobs)
	firstRan := int(ran)
	if firstRan >= n {
		t.Fatalf("cancel did not stop the sweep (ran all %d)", firstRan)
	}

	resumed, err := ResumeCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran = 0
	jobs2 := make([]Job, n)
	for i := range jobs2 {
		i := i
		jobs2[i] = Job{Name: fmt.Sprintf("job-%02d", i),
			Run: func(context.Context, int64) (any, error) { atomic.AddInt32(&ran, 1); return i, nil }}
	}
	results := (&Runner{Workers: 1, Checkpoint: resumed}).Run(context.Background(), jobs2)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete(jobNames(jobs2)) {
		t.Error("manifest not complete after resume")
	}
	if int(ran)+skippedCount(results) != n || skippedCount(results) == 0 {
		t.Errorf("resume ran %d, skipped %d, want total %d with some skipped", ran, skippedCount(results), n)
	}
}

func skippedCount(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Resumed {
			n++
		}
	}
	return n
}
