// Package sweep runs attack and experiment jobs concurrently on a
// worker pool. The paper's headline evaluation (Tables I and III–VI)
// is a large sweep — oracle-guided SAT attacks over many benchmarks ×
// RIL-Block counts × LUT sizes, each with its own wall-clock budget —
// and the jobs are mutually independent, so the sweep parallelizes
// perfectly up to the core count. The runner guarantees:
//
//   - per-job deterministic seeds (DeriveSeed splits a base seed so
//     results are identical regardless of worker count or schedule)
//   - per-job deadlines via context.Context, threaded down through
//     attack.SATOptions into the CDCL solver's abort poll
//   - panic isolation: a crashing job becomes a failed Result, not a
//     dead sweep
//   - results in job order, independent of completion order
package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cache"
)

// Job is one unit of sweep work. Run receives a context that is
// cancelled at the job's deadline (Job.Timeout, falling back to
// Runner.Timeout) or when the whole sweep is cancelled, plus the job's
// deterministic seed.
type Job struct {
	// Name identifies the job in results and progress output.
	Name string
	// Seed is the job's deterministic seed. Runners do not invent
	// seeds: build jobs with DeriveSeed so a sweep is reproducible
	// from its base seed alone.
	Seed int64
	// Timeout overrides the runner's default per-job timeout
	// (0 = inherit). A negative Timeout is a configuration error, not a
	// "no deadline" request: Run and RunOne reject it up front with
	// ErrNegativeTimeout instead of silently running unbounded.
	Timeout time.Duration
	// CacheKey, when valid and Runner.Cache is set, identifies the
	// job's result in the content-addressed cache: the job is served
	// from the cache before dispatch and stored back on success. The
	// zero Key opts the job out. Builders must fold *everything* that
	// determines the result into the key (netlist canonical form, all
	// options, the seed) — the cache trusts the key completely.
	CacheKey cache.Key
	// Run executes the job. The returned value lands in Result.Value.
	Run func(ctx context.Context, seed int64) (any, error)
}

// Result is the outcome of one job.
type Result struct {
	Name    string        `json:"name"`
	Index   int           `json:"index"`
	Worker  int           `json:"worker"`
	Value   any           `json:"value,omitempty"`
	Err     error         `json:"-"`
	Error   string        `json:"error,omitempty"` // Err rendered for JSON
	Panic   bool          `json:"panic,omitempty"`
	Elapsed time.Duration `json:"-"`
	Seconds float64       `json:"seconds"`
	// Resumed marks a job that was not run because a checkpoint
	// manifest already records it done; Value then holds the recorded
	// json.RawMessage payload, not the job's native result type.
	Resumed bool `json:"resumed,omitempty"`
	// Cached marks a job served from Runner.Cache without running;
	// like Resumed, Value holds the json.RawMessage payload the
	// original run stored.
	Cached bool `json:"cached,omitempty"`
}

// PanicError is the Result.Err of a job that panicked; the sweep
// itself survives.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", e.Value, e.Stack)
}

// Runner executes jobs on a bounded worker pool.
type Runner struct {
	// Workers is the pool size; 0 or negative means runtime.NumCPU().
	Workers int
	// Timeout is the default per-job deadline (0 = none).
	Timeout time.Duration
	// Progress, when non-nil, is called from worker goroutines as each
	// job finishes (in completion order, not job order). It must be
	// safe for concurrent use. Jobs skipped via a checkpoint manifest
	// report once, up front, with Resumed set.
	Progress func(Result)
	// Checkpoint, when non-nil, persists every job completion to the
	// checkpoint directory's manifest and, when the checkpoint was
	// opened with ResumeCheckpoint, skips jobs the manifest already
	// records as done (failed jobs re-run). Jobs that want their own
	// partial-progress files derive paths via Checkpoint.JobFile.
	Checkpoint *Checkpoint
	// Cache, when non-nil, serves jobs with a valid CacheKey from the
	// content-addressed result cache before dispatch and stores each
	// successful result back after the run. The checkpoint manifest
	// takes precedence on resume — jobs it records done are skipped
	// outright — and cache hits are themselves recorded into the
	// manifest, so a resumed sweep consults the cache exactly for the
	// jobs the manifest does not yet cover. Failed jobs are never
	// cached.
	Cache *cache.Cache
}

// ErrNegativeTimeout reports a Job built with a negative Timeout. The
// field's contract is "0 = inherit the runner default, positive =
// override"; a negative value is always a caller bug (most often a
// subtraction that went past zero), and silently treating it as "no
// deadline" would disable the very guardrail the field exists for. Run
// and RunOne fail fast at entry instead of running anything.
var ErrNegativeTimeout = errors.New("sweep: negative job timeout")

// checkTimeouts validates every job's Timeout before any job runs,
// returning a descriptive ErrNegativeTimeout for the first offender.
func checkTimeouts(jobs []Job) error {
	for i := range jobs {
		if jobs[i].Timeout < 0 {
			return fmt.Errorf("job %q (index %d) has timeout %v: %w",
				jobs[i].Name, i, jobs[i].Timeout, ErrNegativeTimeout)
		}
	}
	return nil
}

// Run executes all jobs and returns their results in job order. A
// cancelled ctx stops the sweep: running jobs see their contexts
// cancelled, queued jobs are not started and report ctx's error. A job
// with a negative Timeout fails the whole sweep at entry — every
// result carries ErrNegativeTimeout and nothing runs.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkTimeouts(jobs); err != nil {
		results := make([]Result, len(jobs))
		for i := range jobs {
			results[i] = Result{Name: jobs[i].Name, Index: i, Worker: -1,
				Err: err, Error: err.Error()}
		}
		return results
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	// Resolve checkpointed completions first so workers only ever see
	// jobs that actually need to run.
	skipped := make([]bool, len(jobs))
	if r.Checkpoint != nil {
		for i := range jobs {
			entry, ok := r.Checkpoint.Completed(jobs[i].Name)
			if !ok {
				continue
			}
			skipped[i] = true
			results[i] = Result{Name: jobs[i].Name, Index: i, Worker: -1,
				Value: entry.Value, Seconds: entry.Seconds, Resumed: true}
			if r.Progress != nil {
				r.Progress(results[i])
			}
		}
	}
	// Then the cross-run cache: jobs the manifest does not cover are
	// looked up by content key before dispatch, so repeated and
	// overlapping sweeps (and resumed sweeps whose manifest is behind
	// the cache) re-run nothing the cache already proves done.
	if r.Cache != nil {
		for i := range jobs {
			if skipped[i] || !jobs[i].CacheKey.Valid() {
				continue
			}
			raw, seconds, ok := r.Cache.GetTimed(jobs[i].CacheKey)
			if !ok {
				continue
			}
			skipped[i] = true
			// The hit keeps the original run's wall clock (stored by
			// PutTimed below) so warm report cells and JSON results never
			// show a 0-second runtime for real solver work.
			results[i] = Result{Name: jobs[i].Name, Index: i, Worker: -1,
				Value: json.RawMessage(raw), Cached: true,
				Seconds: seconds, Elapsed: time.Duration(seconds * float64(time.Second))}
			if r.Checkpoint != nil {
				if err := r.Checkpoint.record(results[i]); err != nil {
					results[i].Err = fmt.Errorf("checkpoint: %w", err)
					results[i].Error = results[i].Err.Error()
				}
			}
			if r.Progress != nil {
				r.Progress(results[i])
			}
		}
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idxCh {
				results[i] = r.runOne(ctx, worker, i, jobs[i])
				if r.Checkpoint != nil {
					if err := r.Checkpoint.record(results[i]); err != nil && results[i].Err == nil {
						results[i].Err = fmt.Errorf("checkpoint: %w", err)
						results[i].Error = results[i].Err.Error()
					}
				}
				// Store successful results for future runs. A failed
				// store must not fail the job — the cache keeps its own
				// error counter and the result is already in hand.
				if r.Cache != nil && jobs[i].CacheKey.Valid() &&
					results[i].Err == nil && results[i].Value != nil {
					if raw, err := json.Marshal(results[i].Value); err == nil {
						_ = r.Cache.PutTimed(jobs[i].CacheKey, raw, results[i].Seconds)
					}
				}
				if r.Progress != nil {
					r.Progress(results[i])
				}
			}
		}(w)
	}
feed:
	for i := range jobs {
		if skipped[i] {
			continue
		}
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// Mark every job not yet handed to a worker as cancelled.
			for j := i; j < len(jobs); j++ {
				if skipped[j] {
					continue
				}
				results[j] = Result{Name: jobs[j].Name, Index: j, Worker: -1,
					Err: ctx.Err(), Error: ctx.Err().Error()}
			}
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	return results
}

// RunOne executes a single job with the runner's default deadline and
// panic isolation but without the batch pool: long-lived consumers
// (the rild daemon's queue workers) dequeue jobs one at a time and run
// each through RunOne, getting the exact per-job semantics of Run —
// including the negative-Timeout contract and the interrupted-result
// accounting on a cancelled ctx.
func (r *Runner) RunOne(ctx context.Context, job Job) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkTimeouts([]Job{job}); err != nil {
		return Result{Name: job.Name, Worker: -1, Err: err, Error: err.Error()}
	}
	return r.runOne(ctx, -1, 0, job)
}

// runOne executes a single job with deadline and panic isolation.
func (r *Runner) runOne(ctx context.Context, worker, index int, job Job) (res Result) {
	res = Result{Name: job.Name, Index: index, Worker: worker}
	timeout := job.Timeout
	if timeout == 0 {
		timeout = r.Timeout
	}
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		res.Seconds = res.Elapsed.Seconds()
		if p := recover(); p != nil {
			res.Err = &PanicError{Value: p, Stack: string(debug.Stack())}
			res.Panic = true
		}
		if res.Err == nil && ctx.Err() != nil {
			// The sweep itself was cancelled while the job ran. A nil
			// error here cannot be trusted to mean "complete": attacks
			// report a truncated run as an ordinary timeout result, and
			// recording that as done would make a checkpoint resume skip
			// an unfinished job forever. Conservatively mark the result
			// interrupted — a re-run picks up the job's own journal, so
			// the only cost is re-dispatching a job that may have just
			// finished. Per-job deadlines (jctx) are not affected: a job
			// that hits its own deadline is a legitimate ∞ result.
			res.Err = fmt.Errorf("sweep: job interrupted: %w", ctx.Err())
		}
		if res.Err != nil {
			res.Error = res.Err.Error()
		}
	}()
	res.Value, res.Err = job.Run(jctx, job.Seed)
	return res
}

// DeriveSeed deterministically splits a base seed per job index using
// a SplitMix64 step, so jobs get independent, schedule-invariant
// streams. Index 0 with base b never collides with index 1 of base b-1.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(index+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	// Keep it positive: seeds feed rand.NewSource, where sign carries
	// no extra entropy and negative values read poorly in logs.
	return int64(z &^ (1 << 63))
}

// Errs returns the errors of all failed jobs, in job order.
func Errs(results []Result) []error {
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("job %q: %w", results[i].Name, results[i].Err))
		}
	}
	return errs
}

// FirstErr returns the first failed job's error, or nil.
func FirstErr(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("sweep: job %q: %w", results[i].Name, results[i].Err)
		}
	}
	return nil
}

// WriteJSON emits results as an indented JSON array. Values must be
// JSON-marshalable (the attack result types are).
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
