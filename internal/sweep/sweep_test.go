package sweep_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sweep"
	"repro/internal/testutil"
)

func TestRunOrderAndValues(t *testing.T) {
	const n = 17
	var jobs []sweep.Job
	for i := 0; i < n; i++ {
		i := i
		jobs = append(jobs, sweep.Job{
			Name: fmt.Sprintf("job%d", i),
			Seed: sweep.DeriveSeed(1, i),
			Run: func(ctx context.Context, seed int64) (any, error) {
				return i * i, nil
			},
		})
	}
	var progressed atomic.Int64
	r := &sweep.Runner{Workers: 4, Progress: func(sweep.Result) { progressed.Add(1) }}
	results := r.Run(context.Background(), jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i || res.Name != fmt.Sprintf("job%d", i) {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
		if res.Err != nil || res.Value.(int) != i*i {
			t.Fatalf("result %d wrong: %+v", i, res)
		}
	}
	if got := progressed.Load(); got != n {
		t.Fatalf("progress callback fired %d times, want %d", got, n)
	}
	if err := sweep.FirstErr(results); err != nil {
		t.Fatalf("unexpected sweep error: %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := []sweep.Job{
		{Name: "ok1", Run: func(context.Context, int64) (any, error) { return "a", nil }},
		{Name: "boom", Run: func(context.Context, int64) (any, error) { panic("kaboom") }},
		{Name: "ok2", Run: func(context.Context, int64) (any, error) { return "b", nil }},
	}
	results := (&sweep.Runner{Workers: 2}).Run(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs infected by panic: %+v", results)
	}
	if !results[1].Panic {
		t.Fatalf("panicking job not flagged: %+v", results[1])
	}
	var pe *sweep.PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("want PanicError, got %T", results[1].Err)
	}
	if pe.Value != "kaboom" || !strings.Contains(pe.Stack, "sweep_test") {
		t.Fatalf("panic payload lost: value=%v", pe.Value)
	}
	if errs := sweep.Errs(results); len(errs) != 1 {
		t.Fatalf("Errs found %d failures, want 1", len(errs))
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := []sweep.Job{
		{Name: "fast", Run: func(ctx context.Context, _ int64) (any, error) { return "done", nil }},
		{
			Name:    "slow",
			Timeout: 30 * time.Millisecond,
			Run: func(ctx context.Context, _ int64) (any, error) {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(10 * time.Second):
					return "should not happen", nil
				}
			},
		},
	}
	start := time.Now()
	results := (&sweep.Runner{Workers: 2}).Run(context.Background(), jobs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the job: %v", elapsed)
	}
	if results[0].Err != nil {
		t.Fatalf("fast job failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job error = %v, want deadline exceeded", results[1].Err)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var jobs []sweep.Job
	jobs = append(jobs, sweep.Job{
		Name: "blocker",
		Run: func(ctx context.Context, _ int64) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	for i := 0; i < 8; i++ {
		jobs = append(jobs, sweep.Job{
			Name: fmt.Sprintf("queued%d", i),
			Run:  func(context.Context, int64) (any, error) { return "ran", nil },
		})
	}
	go func() {
		<-started
		cancel()
	}()
	results := (&sweep.Runner{Workers: 1}).Run(ctx, jobs)
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("running job error = %v, want canceled", results[0].Err)
	}
	cancelled := 0
	for _, res := range results[1:] {
		if errors.Is(res.Err, context.Canceled) && res.Worker == -1 {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no queued job reported sweep cancellation")
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]string)
	for base := int64(0); base < 50; base++ {
		for idx := 0; idx < 50; idx++ {
			s := sweep.DeriveSeed(base, idx)
			if s < 0 {
				t.Fatalf("DeriveSeed(%d,%d) = %d negative", base, idx, s)
			}
			key := fmt.Sprintf("%d/%d", base, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
			if s != sweep.DeriveSeed(base, idx) {
				t.Fatal("DeriveSeed not deterministic")
			}
		}
	}
}

// attackJob locks a fresh small circuit with one 2x2 RIL block under
// the job seed and SAT-attacks it, returning a schedule-independent
// summary (key string + iteration count).
func attackJob(orig *netlist.Netlist) func(ctx context.Context, seed int64) (any, error) {
	return func(ctx context.Context, seed int64) (any, error) {
		res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: seed})
		if err != nil {
			return nil, err
		}
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			return nil, err
		}
		oracle, err := attack.NewSimOracle(bound)
		if err != nil {
			return nil, err
		}
		ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
			attack.SATOptions{Timeout: time.Minute, Context: ctx})
		if err != nil {
			return nil, err
		}
		if ar.Status != attack.KeyFound {
			return nil, fmt.Errorf("attack did not converge: %v", ar)
		}
		key := make([]byte, len(ar.Key))
		for i, b := range ar.Key {
			key[i] = '0'
			if b {
				key[i] = '1'
			}
		}
		return fmt.Sprintf("key=%s iters=%d", key, ar.Iterations), nil
	}
}

func sweepCircuit(t *testing.T) *netlist.Netlist {
	t.Helper()
	return testutil.RandomCircuit(t, 10, 5, 40, 99)
}

// TestSweepDeterministicAcrossWorkerCounts runs the same 6 completing
// attack jobs sequentially and with 4 workers; every per-job outcome
// (recovered key, DIP count) must be identical, proving results do not
// depend on scheduling.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	orig := sweepCircuit(t)
	mkJobs := func() []sweep.Job {
		var jobs []sweep.Job
		for i := 0; i < 6; i++ {
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("attack%d", i),
				Seed: sweep.DeriveSeed(42, i),
				Run:  attackJob(orig),
			})
		}
		return jobs
	}
	seq := (&sweep.Runner{Workers: 1}).Run(context.Background(), mkJobs())
	par := (&sweep.Runner{Workers: 4}).Run(context.Background(), mkJobs())
	if err := sweep.FirstErr(seq); err != nil {
		t.Fatalf("sequential sweep failed: %v", err)
	}
	if err := sweep.FirstErr(par); err != nil {
		t.Fatalf("parallel sweep failed: %v", err)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Value, par[i].Value) {
			t.Errorf("job %d differs across worker counts:\n  1 worker : %v\n  4 workers: %v",
				i, seq[i].Value, par[i].Value)
		}
	}
}

// TestConcurrentAttacksSharedOracle runs two SAT attacks through the
// sweep runner against the SAME SimOracle instance. Under -race this
// pins the oracle's thread safety (shared simulator buffers + query
// counter); functionally both attacks must still converge to correct
// keys.
func TestConcurrentAttacksSharedOracle(t *testing.T) {
	orig := sweepCircuit(t)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context, _ int64) (any, error) {
		ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
			attack.SATOptions{Timeout: time.Minute, Context: ctx})
		if err != nil {
			return nil, err
		}
		if ar.Status != attack.KeyFound {
			return nil, fmt.Errorf("attack did not converge: %v", ar)
		}
		recovered, err := res.ApplyKey(ar.Key)
		if err != nil {
			return nil, err
		}
		eq, _, err := netlist.Equivalent(bound, recovered, 10, 0, 1)
		if err != nil {
			return nil, err
		}
		if !eq {
			return nil, fmt.Errorf("recovered key functionally wrong")
		}
		return ar.Iterations, nil
	}
	jobs := []sweep.Job{
		{Name: "shared/a", Run: run},
		{Name: "shared/b", Run: run},
	}
	results := (&sweep.Runner{Workers: 2}).Run(context.Background(), jobs)
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if q := oracle.Queries(); q < results[0].Value.(int)+results[1].Value.(int) {
		t.Errorf("shared oracle counted %d queries, want at least %d",
			q, results[0].Value.(int)+results[1].Value.(int))
	}
}

// latencyOracle wraps a SimOracle and adds a fixed wall-clock delay
// per query, modelling the paper's actual threat setting: the oracle
// is a physical activated chip on a tester, and each query pays I/O
// latency. Attacks against such oracles are latency-bound, which is
// exactly the regime where the sweep's worker pool wins even when
// cores are scarce.
type latencyOracle struct {
	*attack.SimOracle
	delay time.Duration
}

func (o *latencyOracle) Query(in []bool) []bool {
	time.Sleep(o.delay)
	return o.SimOracle.Query(in)
}

// BenchmarkLatencyBoundSweep measures wall-clock for the same 8-job
// attack sweep at 1 and 4 workers against 10ms-latency oracles. Run:
//
//	go test -bench LatencyBoundSweep -benchtime 1x ./internal/sweep/
//
// The recorded numbers back EXPERIMENTS.md's speedup table.
func BenchmarkLatencyBoundSweep(b *testing.B) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "sweepbench", Inputs: 10, Outputs: 5, Gates: 40, Locality: 0.6,
	}, 99)
	if err != nil {
		b.Fatal(err)
	}
	mkJobs := func() []sweep.Job {
		var jobs []sweep.Job
		for i := 0; i < 8; i++ {
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("attack%d", i),
				Seed: sweep.DeriveSeed(42, i),
				Run: func(ctx context.Context, seed int64) (any, error) {
					res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: seed})
					if err != nil {
						return nil, err
					}
					bound, err := res.ApplyKey(res.Key)
					if err != nil {
						return nil, err
					}
					sim, err := attack.NewSimOracle(bound)
					if err != nil {
						return nil, err
					}
					oracle := &latencyOracle{SimOracle: sim, delay: 10 * time.Millisecond}
					ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
						attack.SATOptions{Timeout: time.Minute, Context: ctx})
					if err != nil {
						return nil, err
					}
					if ar.Status != attack.KeyFound {
						return nil, fmt.Errorf("attack did not converge: %v", ar)
					}
					return ar.Iterations, nil
				},
			})
		}
		return jobs
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := (&sweep.Runner{Workers: workers}).Run(context.Background(), mkJobs())
				if err := sweep.FirstErr(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestNegativeTimeoutFailsFast: a negative Job.Timeout is a caller bug
// (the field's contract is 0 = inherit, positive = override) and must
// fail the sweep at entry instead of silently disabling the deadline.
func TestNegativeTimeoutFailsFast(t *testing.T) {
	var ran atomic.Int64
	jobs := []sweep.Job{
		{Name: "ok", Run: func(ctx context.Context, _ int64) (any, error) {
			ran.Add(1)
			return "x", nil
		}},
		{Name: "bad", Timeout: -time.Second, Run: func(ctx context.Context, _ int64) (any, error) {
			ran.Add(1)
			return "y", nil
		}},
	}
	results := (&sweep.Runner{Workers: 2}).Run(context.Background(), jobs)
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran despite the negative timeout", ran.Load())
	}
	for i := range results {
		if !errors.Is(results[i].Err, sweep.ErrNegativeTimeout) {
			t.Fatalf("result %d error = %v, want ErrNegativeTimeout", i, results[i].Err)
		}
		if !strings.Contains(results[i].Error, `"bad"`) {
			t.Fatalf("result %d error %q does not name the offending job", i, results[i].Error)
		}
	}

	res := (&sweep.Runner{}).RunOne(context.Background(), jobs[1])
	if !errors.Is(res.Err, sweep.ErrNegativeTimeout) || ran.Load() != 0 {
		t.Fatalf("RunOne error = %v (ran=%d), want ErrNegativeTimeout without running", res.Err, ran.Load())
	}
}

// TestRunOne: the daemon's single-job entry point keeps Run's
// semantics — deadline inheritance from the runner and panic
// isolation.
func TestRunOne(t *testing.T) {
	r := &sweep.Runner{Timeout: 50 * time.Millisecond}
	res := r.RunOne(context.Background(), sweep.Job{
		Name: "deadline",
		Run: func(ctx context.Context, _ int64) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline job error = %v", res.Err)
	}
	res = r.RunOne(context.Background(), sweep.Job{
		Name: "panics",
		Run:  func(ctx context.Context, _ int64) (any, error) { panic("boom") },
	})
	if !res.Panic || res.Err == nil {
		t.Fatalf("panic not isolated: %+v", res)
	}
	res = r.RunOne(context.Background(), sweep.Job{
		Name: "ok",
		Run:  func(ctx context.Context, _ int64) (any, error) { return 42, nil },
	})
	if res.Err != nil || res.Value != 42 {
		t.Fatalf("RunOne = %+v", res)
	}
}

// TestCancelledSweepNeverRecordsSuccess: a job that returns a nil
// error while the sweep context is already cancelled must be reported
// interrupted — attacks render a truncated run as an ordinary timeout
// value, and recording that as done would make a checkpoint resume
// skip an unfinished job forever.
func TestCancelledSweepNeverRecordsSuccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	jobs := []sweep.Job{{
		Name: "truncated",
		Run: func(jctx context.Context, _ int64) (any, error) {
			close(started)
			<-jctx.Done()
			// An attack in this position reports Status: Timeout with a
			// nil error — indistinguishable from a legitimate ∞ cell.
			return "timeout-looking-result", nil
		},
	}}
	go func() {
		<-started
		cancel()
	}()
	results := (&sweep.Runner{Workers: 1}).Run(ctx, jobs)
	if results[0].Err == nil {
		t.Fatal("cancellation-truncated job reported success")
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", results[0].Err)
	}

	// A per-job deadline, by contrast, is a legitimate ∞ result and
	// must stay a success.
	res := (&sweep.Runner{}).RunOne(context.Background(), sweep.Job{
		Name:    "legit-timeout",
		Timeout: 20 * time.Millisecond,
		Run: func(jctx context.Context, _ int64) (any, error) {
			<-jctx.Done()
			return "inf", nil
		},
	})
	if res.Err != nil || res.Value != "inf" {
		t.Fatalf("per-job deadline result = %+v, want success", res)
	}
}
