// Package testutil holds deterministic generators and fault-injection
// helpers shared by the attack, sweep and netlist test suites: random
// benchmark circuits, random keys, the classic XOR/XNOR locking
// baseline, the .bench fuzz seed corpus, and a crash-injecting writer
// for checkpoint/journal durability tests.
package testutil

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/netlint"
	"repro/internal/netlist"
)

// RandomCircuit generates a small random combinational netlist with
// the house profile (deep-narrow, ISCAS-like gate mix), failing the
// test on generator errors. Deterministic in (shape, seed).
func RandomCircuit(tb testing.TB, inputs, outputs, gates int, seed int64) *netlist.Netlist {
	tb.Helper()
	nl, err := netlist.Random(netlist.RandomProfile{
		Name:   fmt.Sprintf("rand-i%d-o%d-g%d-s%d", inputs, outputs, gates, seed),
		Inputs: inputs, Outputs: outputs, Gates: gates, Locality: 0.6,
	}, seed)
	if err != nil {
		tb.Fatalf("testutil: random circuit: %v", err)
	}
	return nl
}

// SmallCircuit is the shape most attack tests use: 12 inputs, 6
// outputs, the given gate count.
func SmallCircuit(tb testing.TB, gates int, seed int64) *netlist.Netlist {
	tb.Helper()
	return RandomCircuit(tb, 12, 6, gates, seed)
}

// RandomKey returns n deterministic pseudo-random key bits.
func RandomKey(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	key := make([]bool, n)
	for i := range key {
		key[i] = rng.Intn(2) == 1
	}
	return key
}

// XORLock applies the classic random XOR/XNOR locking baseline: nKeys
// key-controlled XOR/XNOR gates inserted on random logic wires. It
// returns the locked netlist, the key input positions, and the correct
// key. Deterministic in (circuit, nKeys, seed).
func XORLock(tb testing.TB, orig *netlist.Netlist, nKeys int, seed int64) (*netlist.Netlist, []int, []bool) {
	tb.Helper()
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	var keyPos []int
	var key []bool
	// Candidate wires: logic gates (not inputs) to keep things simple.
	var cands []int
	for id := range nl.Gates {
		if nl.Gates[id].Type != netlist.Input {
			cands = append(cands, id)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) < nKeys {
		tb.Fatalf("testutil: not enough wires to lock")
	}
	for i := 0; i < nKeys; i++ {
		wire := cands[i]
		bit := rng.Intn(2) == 1
		keyPos = append(keyPos, len(nl.Inputs))
		kid := nl.AddInput(fmt.Sprintf("keyinput%d", i))
		var g int
		if bit {
			// XNOR with key=1 is transparent.
			g = nl.AddGate(fmt.Sprintf("klock%d", i), netlist.Xnor, wire, kid)
		} else {
			g = nl.AddGate(fmt.Sprintf("klock%d", i), netlist.Xor, wire, kid)
		}
		nl.RedirectFanout(wire, g)
		key = append(key, bit)
	}
	if err := nl.Validate(); err != nil {
		tb.Fatal(err)
	}
	return nl, keyPos, key
}

// PlantAuditFixture locks orig with seven key bits of which only
// three survive the oracle-less resilience audit: keyinput0 is a
// sound XOR lock; keyinput1 is forced irrelevant through an AND with
// a constant; keyinput2/keyinput3 are series XORs on one wire and
// keyinput4/keyinput5 funnel through a key-only XOR, so each pair
// collapses to its parity; keyinput6 is sound logic but sits as a
// cell on the functional scan chain of the returned ScanSpec. The
// canonical key is all-zero (every mix is a plain XOR). Lock sites
// are the primary outputs followed by the earliest logic gates, so
// the construction is deterministic; orig needs at least five
// distinct sites.
func PlantAuditFixture(tb testing.TB, orig *netlist.Netlist) (*netlist.Netlist, []int, []bool, *netlint.ScanSpec) {
	tb.Helper()
	nl := orig.Clone()
	seen := map[int]bool{}
	var sites []int
	for _, o := range nl.Outputs {
		if !seen[o] {
			seen[o] = true
			sites = append(sites, o)
		}
	}
	for id := 0; id < len(nl.Gates) && len(sites) < 5; id++ {
		if nl.Gates[id].Type != netlist.Input && !seen[id] {
			seen[id] = true
			sites = append(sites, id)
		}
	}
	if len(sites) < 5 {
		tb.Fatalf("testutil: %q has %d lock sites, PlantAuditFixture needs 5", nl.Name, len(sites))
	}
	var keyPos []int
	addKey := func(i int) int {
		keyPos = append(keyPos, len(nl.Inputs))
		return nl.AddInput(fmt.Sprintf("keyinput%d", i))
	}
	mix := func(site, signal int, name string) int {
		g := nl.AddGate(name, netlist.Xor, site, signal)
		nl.RedirectFanout(site, g)
		return g
	}
	k0 := addKey(0)
	mix(sites[0], k0, "auditg0")
	k1 := addKey(1)
	zero := nl.AddGate("auditzero", netlist.Const0)
	dead := nl.AddGate("auditdead1", netlist.And, k1, zero)
	mix(sites[1], dead, "auditg1")
	k2 := addKey(2)
	k3 := addKey(3)
	g2 := mix(sites[2], k2, "auditg2")
	mix(g2, k3, "auditg3")
	k4 := addKey(4)
	k5 := addKey(5)
	funnel := nl.AddGate("auditkk45", netlist.Xor, k4, k5)
	mix(sites[3], funnel, "auditg45")
	k6 := addKey(6)
	mix(sites[4], k6, "auditg6")
	if err := nl.Validate(); err != nil {
		tb.Fatalf("testutil: audit fixture: %v", err)
	}
	scan := &netlint.ScanSpec{Chains: []netlint.ScanChainSpec{{
		Name:  "func0",
		Width: 2,
		Cells: []string{nl.Gates[sites[4]].Name, "keyinput6"},
	}}}
	return nl, keyPos, make([]bool, 7), scan
}

// BenchSeeds returns the shared seed corpus for the .bench parser fuzz
// targets: valid circuits (forward refs, DFFs, MUX/const gates),
// syntax errors, and semantic errors that split strict from lax.
func BenchSeeds() []string {
	return []string{
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
		"# fwd ref\nINPUT(a)\nOUTPUT(y)\ny = NOT(t)\nt = BUFF(a)\n",
		"INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n",
		"INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(s, a, b)\n",
		"OUTPUT(y)\ny = CONST1()\nz = CONST0()\n",
		"INPUT(a)\nOUTPUT(y)\ny = XOR(a, ghost)\n",         // undriven net: lax-only
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n", // cycle: lax-only
		"INPUT(a)\nOUTPUT(y)\n",                            // undefined output: lax-only
		"INPUT(a)\nINPUT(a)\n",                             // duplicate input: both reject
		"y = FROB(a)\n",                                    // unknown op: both reject
		"y = NOT(a, b)\n",                                  // bad arity: both reject
		"bogus line\n",                                     // syntax error: both reject
		"INPUT(a)\nOUTPUT(y)\ny = AND(a a)\n",
		"",
		"# only a comment\n",
	}
}

// ErrInjected is the error a FaultyWriter returns once its byte budget
// is exhausted, standing in for the crash/ENOSPC/kill that interrupted
// the real write.
var ErrInjected = errors.New("testutil: injected write fault")

// FaultyWriter simulates a crash mid-write: it forwards writes to the
// underlying writer until a byte budget is exhausted, tears the
// overflowing write (the in-budget prefix is still written, like a
// real torn page), and fails that and every later write with
// ErrInjected. Sync calls are counted and forwarded when the
// underlying writer supports them, so journal fsync-per-record
// behaviour is observable in tests.
type FaultyWriter struct {
	mu      sync.Mutex
	w       io.Writer
	budget  int // bytes still allowed; <0 = unlimited
	tripped bool
	Syncs   int // number of Sync calls observed
}

// NewFaultyWriter wraps w with a byte budget. A negative budget never
// trips.
func NewFaultyWriter(w io.Writer, budget int) *FaultyWriter {
	return &FaultyWriter{w: w, budget: budget}
}

// Write implements io.Writer with the fault semantics above.
func (f *FaultyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return 0, ErrInjected
	}
	if f.budget < 0 || len(p) <= f.budget {
		if f.budget >= 0 {
			f.budget -= len(p)
		}
		return f.w.Write(p)
	}
	// Torn write: the prefix that fit the budget lands, the rest is
	// lost, and the writer is dead from here on.
	n, _ := f.w.Write(p[:f.budget])
	f.budget = 0
	f.tripped = true
	return n, ErrInjected
}

// Tripped reports whether the injected fault has fired.
func (f *FaultyWriter) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// Sync implements the journal's fsync hook; it forwards to the
// underlying writer when supported and fails after the fault fired.
func (f *FaultyWriter) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.Syncs++
	if f.tripped {
		return ErrInjected
	}
	if s, ok := f.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
